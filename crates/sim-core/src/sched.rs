//! Cooperative deterministic scheduling of simulated threads — sequential
//! and conservative-parallel (PDES).
//!
//! The simulation runs every simulated host as real OS threads (one DSM
//! server plus the application threads), which makes the default execution
//! *optimistic*: virtual time is accounted deterministically, but the real
//! interleaving — and therefore message arrival order, directory state
//! transitions, and the recorded trace — is whatever the OS scheduler
//! produced. This module adds a **deterministic mode**: when a
//! [`Scheduler`] is enabled, every thread hands control back at explicit
//! *yield points* (message send/receive, fault entry, blocking
//! rendezvous), and the next runnable thread is picked by a deterministic
//! [`SchedPolicy`]. A seed then maps to exactly one interleaving and one
//! trace, which is what makes schedule *exploration* (random-walk / PCT
//! search over interleavings, with replayable minimal reproducers)
//! possible at all.
//!
//! # Partitioned execution
//!
//! Deterministic mode is built as a **conservative parallel discrete-event
//! simulation** (PDES). The host set is split into partitions, each driven
//! by the OS threads of its hosts; within a partition exactly one
//! simulated thread runs at a time. Partitions advance independently
//! through a window `[W0, W0 + L)` of virtual time, where `W0` is the
//! globally-minimal next event and `L` is the *lookahead*: the minimum
//! cross-host message latency ([`crate::cost::CostModel::min_remote_latency`]).
//! No event executed inside the window can affect another partition
//! before the window ends, so partitions cannot observe each other's
//! in-window progress. At the window boundary every partition arrives at
//! a barrier; the last arriver derives the next window and releases the
//! others.
//!
//! Cross-host message delivery is **gated** (see [`DeliveryGate`]): a
//! send enqueues the packet keyed by its release time, and the
//! *destination* partition's dispatch loop delivers it exactly when the
//! canonical virtual-time order reaches it — before any runnable thread
//! with a later (or equal) virtual time. Sequential execution is the
//! one-partition, infinite-lookahead special case of the same machinery,
//! which is what makes the parallel schedule **byte-identical** to the
//! sequential one: both run the identical per-partition decision
//! procedure; only the wall-clock concurrency differs.
//!
//! Design notes:
//!
//! * **Disabled is free.** A disabled scheduler hands out inert
//!   [`SchedThread`] handles whose methods are a single branch on an
//!   `Option`; the free-threaded default path is untouched.
//! * **Wake-ups are action-counted, not wired.** Blocking conditions
//!   (a waiter slot filling, a packet landing in an inbox) live in the
//!   protocol layer and are not told about the scheduler. Instead a
//!   per-partition *action counter* is bumped after anything that could
//!   unblock a peer (every delivery into the partition, every handler
//!   dispatch); a blocked thread is schedulable again exactly when the
//!   counter moved past the value it recorded when its condition last
//!   failed, and it simply re-checks. A finite number of re-checks per
//!   action means no livelock, and a thread whose condition was already
//!   met never parks. Cross-partition wake-ups must travel through the
//!   gate (a delivery), never through a bare action bump — that is what
//!   keeps the counters partition-local and the schedule reproducible.
//! * **Handler atomicity.** A DSM server handles one message per
//!   scheduling step: the dispatch boundary *is* the yield point, and
//!   everything inside a handler (window open/close, directory updates,
//!   reply sends) is atomic with respect to other simulated threads —
//!   exactly as in the real system, where a handler runs to completion
//!   inside the message layer.
//! * **Deadlock is a verdict, not a hang.** If no thread is runnable
//!   anywhere, no gated packet is pending, and an application thread is
//!   still blocked, the schedule deadlocked: the scheduler poisons
//!   itself, every blocked thread returns [`BlockOutcome::Poisoned`], and
//!   the run terminates with typed errors instead of hanging — a
//!   deadlocking schedule is a *finding* for the exploration harness.
//! * **Exploration stays sequential.** [`SchedPolicy::Random`],
//!   [`SchedPolicy::Pct`] and [`SchedPolicy::Replay`] perturb the global
//!   interleaving, which only exists totally-ordered in the
//!   one-partition case; [`Scheduler::new_parallel`] therefore rejects
//!   them and parallel mode applies to the canonical
//!   [`SchedPolicy::VirtualTime`] policy only.

use crate::clock::Ns;
use crate::rng::SplitMix64;
use crate::HostId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// How many scheduling steps a PCT priority-change schedule spreads its
/// change points over. PCT samples `depth - 1` change points uniformly
/// from this range; runs longer than the hint simply see no further
/// demotions.
const PCT_STEP_HINT: u64 = 4096;

/// Which simulated role a scheduled thread plays. Part of the
/// deterministic tie-break key (application threads before server
/// threads at equal virtual time).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum ThreadClass {
    /// An application thread (drives faults, barriers, locks).
    App,
    /// A DSM server thread (handles protocol messages; the manager shard
    /// runs inside its host's server dispatch).
    Server,
}

/// Identity of one simulated thread: the deterministic tie-break key.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct ThreadKey {
    /// Host the thread belongs to.
    pub host: HostId,
    /// Role on that host.
    pub class: ThreadClass,
    /// Index among same-class threads of the host (0 for the server,
    /// the application thread index otherwise).
    pub lane: u16,
}

impl ThreadKey {
    /// The server thread of `host`.
    pub fn server(host: HostId) -> Self {
        Self {
            host,
            class: ThreadClass::Server,
            lane: 0,
        }
    }

    /// Application thread `lane` of `host`.
    pub fn app(host: HostId, lane: u16) -> Self {
        Self {
            host,
            class: ThreadClass::App,
            lane,
        }
    }
}

impl std::fmt::Display for ThreadKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.class {
            ThreadClass::App => write!(f, "{}.app{}", self.host, self.lane),
            ThreadClass::Server => write!(f, "{}.server", self.host),
        }
    }
}

/// How the deterministic scheduler picks the next runnable thread.
#[derive(Clone, Debug)]
pub enum SchedPolicy {
    /// Smallest `(virtual time, thread key)` first — the canonical
    /// deterministic schedule, closest to what the virtual-time model
    /// "means". The only policy that admits partitioned (parallel)
    /// execution.
    VirtualTime,
    /// Seeded uniform random walk over the runnable set.
    Random {
        /// Seed of the walk.
        seed: u64,
    },
    /// PCT-style priority schedule (Burckhardt et al.): every thread gets
    /// a random priority, the highest-priority runnable thread always
    /// runs, and at `depth - 1` pre-sampled change points the running
    /// thread's priority drops below everyone else's. Finds bugs of
    /// "ordering depth" ≤ `depth` with known probability.
    Pct {
        /// Seed for priorities and change points.
        seed: u64,
        /// Bug depth to target (≥ 1; 1 means no priority changes).
        depth: u32,
    },
    /// Replays a recorded decision sequence: entry *i* names the slot to
    /// run at step *i*. A choice that is not currently runnable (or an
    /// exhausted sequence) falls back to [`SchedPolicy::VirtualTime`], so
    /// prefixes of a recorded schedule are always replayable.
    Replay {
        /// Recorded slot choices, in dispatch order.
        choices: Arc<Vec<u32>>,
    },
}

/// Scheduling mode carried on a cluster configuration. Off by default:
/// the free-threaded optimistic execution. When on, it names the policy
/// and owns the shared decision log the run's [`Scheduler`] records into
/// (so callers can retrieve the schedule after the run for replay and
/// shrinking).
#[derive(Clone, Debug, Default)]
pub struct SchedMode {
    inner: Option<ModeInner>,
}

#[derive(Clone, Debug)]
struct ModeInner {
    policy: SchedPolicy,
    log: Arc<Mutex<Vec<u32>>>,
}

impl SchedMode {
    /// Free-threaded execution (the default).
    pub fn off() -> Self {
        Self { inner: None }
    }

    /// Whether deterministic scheduling is requested.
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Deterministic mode with the canonical [`SchedPolicy::VirtualTime`]
    /// policy.
    pub fn deterministic() -> Self {
        Self::with_policy(SchedPolicy::VirtualTime)
    }

    /// Deterministic mode with a seeded random-walk schedule.
    pub fn random(seed: u64) -> Self {
        Self::with_policy(SchedPolicy::Random { seed })
    }

    /// Deterministic mode with a seeded PCT priority schedule.
    pub fn pct(seed: u64, depth: u32) -> Self {
        Self::with_policy(SchedPolicy::Pct {
            seed,
            depth: depth.max(1),
        })
    }

    /// Deterministic mode replaying a recorded decision sequence.
    pub fn replay(choices: Vec<u32>) -> Self {
        Self::with_policy(SchedPolicy::Replay {
            choices: Arc::new(choices),
        })
    }

    /// Deterministic mode with an explicit policy.
    pub fn with_policy(policy: SchedPolicy) -> Self {
        Self {
            inner: Some(ModeInner {
                policy,
                log: Arc::new(Mutex::new(Vec::new())),
            }),
        }
    }

    /// Whether the mode's policy is the canonical virtual-time order (the
    /// only policy that admits partitioned execution and delivery gating).
    pub fn is_virtual_time(&self) -> bool {
        matches!(
            &self.inner,
            Some(ModeInner {
                policy: SchedPolicy::VirtualTime,
                ..
            })
        )
    }

    /// Short policy name for reports.
    pub fn policy_name(&self) -> &'static str {
        match &self.inner {
            None => "off",
            Some(m) => match m.policy {
                SchedPolicy::VirtualTime => "virtual-time",
                SchedPolicy::Random { .. } => "random",
                SchedPolicy::Pct { .. } => "pct",
                SchedPolicy::Replay { .. } => "replay",
            },
        }
    }

    /// The decision sequence the last run recorded under this mode (the
    /// slot picked at each scheduling step). Empty before any run, when
    /// off, or under partitioned execution (a total decision order only
    /// exists with one partition). Feed it to [`SchedMode::replay`] to
    /// reproduce the run.
    pub fn decisions(&self) -> Vec<u32> {
        match &self.inner {
            None => Vec::new(),
            Some(m) => m.log.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        }
    }
}

/// How gated cross-host deliveries are exposed to the scheduler. The
/// network fabric implements this: a cross-host send is *enqueued* keyed
/// by its release time (arrival time floored by the per-link FIFO
/// cumulative maximum), and the destination partition's dispatch loop
/// *releases* packets in `(release, source)` order exactly when the
/// canonical virtual-time order reaches them.
pub trait DeliveryGate: Send + Sync {
    /// Minimum release virtual time pending for `host`, or [`Ns::MAX`]
    /// when nothing is pending. Called from the destination partition's
    /// dispatch loop and from the window barrier; must be cheap.
    fn min_pending(&self, host: HostId) -> Ns;

    /// Delivers the minimum pending packet for `host` into its inbox.
    /// Must not re-enter the scheduler (the caller accounts the delivery
    /// as a partition-local action itself).
    fn release_next(&self, host: HostId);

    /// Delivers every fault-held (reorder-in-flight) packet, returning
    /// the destination host of each delivered packet. Called only at the
    /// global-idle decision point, when every partition is quiescent —
    /// the gated replacement for the receiver-driven rescue poll.
    fn flush_held(&self) -> Vec<HostId>;
}

/// Parallel-execution request carried on a cluster configuration: how
/// many worker partitions to run, how hosts map onto them, and an
/// optional lookahead override.
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Number of partitions (OS-concurrency units). 1 is valid and runs
    /// the identical window machinery on a single partition.
    pub workers: usize,
    /// Host → worker map (`partition_map[h]` is host `h`'s worker). When
    /// `None`, hosts are split into contiguous balanced chunks.
    pub partition_map: Option<Vec<usize>>,
    /// Safety-horizon override in virtual nanoseconds. When `None`, the
    /// cluster derives it from the cost model's minimum cross-host
    /// message latency. Must never exceed that latency floor, or the
    /// schedule is no longer conservative.
    pub lookahead: Option<Ns>,
}

impl ParallelConfig {
    /// A parallel config with `workers` partitions, the default
    /// contiguous partition map and the cost-model-derived lookahead.
    pub fn workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            partition_map: None,
            lookahead: None,
        }
    }

    /// The default host → worker map: contiguous balanced chunks
    /// (`host * workers / hosts`), which keeps neighbouring hosts — the
    /// likeliest sharers — in one partition.
    pub fn default_map(hosts: usize, workers: usize) -> Vec<usize> {
        (0..hosts).map(|h| h * workers / hosts).collect()
    }
}

/// What a scheduled blocking wait resolved to.
#[derive(Debug)]
pub enum BlockOutcome<T> {
    /// The condition was met; the value it produced.
    Ready(T),
    /// The schedule deadlocked (no runnable thread while an application
    /// thread was blocked) and the run is tearing down. The caller must
    /// unwind/exit instead of retrying.
    Poisoned,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    /// Blocked since the partition's action counter read `seen`;
    /// schedulable again (to re-check its condition) once the counter
    /// moves past it.
    Blocked {
        seen: u64,
    },
    Done,
}

struct Slot {
    key: ThreadKey,
    vt: Ns,
    status: Status,
    attached: bool,
}

enum PolicyState {
    VirtualTime,
    Random {
        rng: SplitMix64,
    },
    Pct {
        prios: Vec<u64>,
        change_at: Vec<u64>,
        demote_next: u64,
    },
    Replay {
        choices: Arc<Vec<u32>>,
        pos: usize,
    },
}

/// Per-partition mutable state: the slots of the partition's threads and
/// the one-running-thread-at-a-time discipline, all under one mutex.
struct PartState {
    slots: Vec<Slot>,
    /// Index (within the partition) of the one thread currently allowed
    /// to run, if any.
    running: Option<usize>,
    /// Whether the partition has arrived at the window barrier.
    at_barrier: bool,
    /// Partition-local potentially-unblocking-action counter (see module
    /// docs).
    actions: u64,
    steps: u64,
    policy: PolicyState,
}

struct Part {
    state: Mutex<PartState>,
    /// One condvar per slot: a dispatch wakes exactly the picked thread
    /// instead of broadcasting to every parked one (the broadcast storm
    /// dominates runtime on million-step schedules).
    cvs: Vec<Condvar>,
    /// The partition's hosts, ascending. Immutable after construction;
    /// the dispatch loop scans these for pending gated deliveries.
    hosts: Vec<HostId>,
}

/// Cross-partition control state: attach/start bookkeeping and the
/// window barrier. Locked after a partition's state is released, never
/// while holding one (lock order: ctl → part → gate).
struct Ctl {
    attached: usize,
    started: bool,
    /// Number of partitions currently at the window barrier.
    arrived: usize,
    /// Set when the whole simulation is quiescent (every partition at
    /// the barrier with no event anywhere); what
    /// [`Scheduler::quiesce_then`] waits for.
    idle: bool,
}

struct Inner {
    parts: Vec<Part>,
    ctl: Mutex<Ctl>,
    /// Signalled when the scheduler goes idle or poisons; what
    /// [`Scheduler::quiesce_then`] waits on (holding the ctl lock).
    main_cv: Condvar,
    poisoned: AtomicBool,
    /// Set while an unregistered external actor (the cluster's main
    /// thread, delivering shutdowns) runs inside a quiesced window;
    /// suppresses dispatches from its action bumps and bypasses the
    /// delivery gate.
    external: AtomicBool,
    /// Exclusive upper bound of the current window. Stored by the
    /// barrier while every partition is quiescent; read by dispatch
    /// loops. `Ns::MAX` in the sequential (infinite-lookahead) case.
    window_end: AtomicU64,
    lookahead: Ns,
    /// Whether cross-host deliveries are gated (virtual-time policy).
    gating: bool,
    gate: OnceLock<Arc<dyn DeliveryGate>>,
    /// Host index → partition index (for action bumps and held-packet
    /// rescue).
    host_part: Vec<usize>,
    total_slots: usize,
    /// Whether dispatch decisions are recorded into the decision log
    /// (one partition only: a total order does not exist otherwise).
    record: bool,
    log: Arc<Mutex<Vec<u32>>>,
}

/// The run-wide deterministic scheduler handle. Cloning shares the
/// scheduler; a default/disabled one is inert.
#[derive(Clone, Default)]
pub struct Scheduler {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Scheduler(off)"),
            Some(inner) => write!(f, "Scheduler(deterministic, {} parts)", inner.parts.len()),
        }
    }
}

impl Scheduler {
    /// An inert scheduler: every handle it produces is a no-op.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Builds a sequential scheduler for the thread set named by `keys`
    /// under `mode`'s policy (inert when the mode is off): one partition,
    /// infinite lookahead. The slot order of `keys` defines the
    /// decision-log numbering, so callers must build it deterministically
    /// (the cluster enumerates servers then application threads in host
    /// order).
    pub fn new(mode: &SchedMode, keys: Vec<ThreadKey>) -> Self {
        let hosts = keys.iter().map(|k| k.host.index() + 1).max().unwrap_or(1);
        Self::build(mode, keys, vec![0; hosts], 1, Ns::MAX)
    }

    /// Builds a partitioned (conservative-parallel) scheduler:
    /// `host_part[h]` names host `h`'s worker partition and `lookahead`
    /// is the safety horizon in virtual nanoseconds (the minimum
    /// cross-host message latency). Empty partitions are compacted away.
    ///
    /// # Panics
    ///
    /// Panics if the mode's policy is not [`SchedPolicy::VirtualTime`]
    /// (exploration policies perturb a total order that only exists
    /// sequentially), if the map is shorter than the host set, or if an
    /// entry names a worker ≥ `workers`.
    pub fn new_parallel(
        mode: &SchedMode,
        keys: Vec<ThreadKey>,
        host_part: Vec<usize>,
        workers: usize,
        lookahead: Ns,
    ) -> Self {
        if mode.is_on() {
            assert!(
                mode.is_virtual_time(),
                "parallel execution requires the virtual-time policy; \
                 {} schedules are sequential-only",
                mode.policy_name()
            );
        }
        assert!(workers >= 1, "parallel execution with zero workers");
        assert!(lookahead >= 1, "zero lookahead would never make progress");
        Self::build(mode, keys, host_part, workers, lookahead)
    }

    fn build(
        mode: &SchedMode,
        keys: Vec<ThreadKey>,
        host_part_in: Vec<usize>,
        workers: usize,
        lookahead: Ns,
    ) -> Self {
        let Some(m) = &mode.inner else {
            return Self::disabled();
        };
        assert!(!keys.is_empty(), "deterministic mode with no threads");
        let max_host = keys.iter().map(|k| k.host.index()).max().unwrap_or(0);
        assert!(
            host_part_in.len() > max_host,
            "partition map covers {} hosts but thread keys name host {}",
            host_part_in.len(),
            max_host
        );
        for (h, &w) in host_part_in.iter().enumerate() {
            assert!(w < workers, "host {h} mapped to worker {w} of {workers}");
        }
        // Compact away workers that own no thread: an empty partition
        // would never arrive at the window barrier.
        let mut used = vec![false; workers];
        for k in &keys {
            used[host_part_in[k.host.index()]] = true;
        }
        let mut remap = vec![0usize; workers];
        let mut nparts = 0;
        for w in 0..workers {
            if used[w] {
                remap[w] = nparts;
                nparts += 1;
            }
        }
        let host_part: Vec<usize> = host_part_in.iter().map(|&w| remap[w]).collect();
        assert!(
            nparts == 1 || matches!(m.policy, SchedPolicy::VirtualTime),
            "exploration policies are sequential-only"
        );
        let gating = matches!(m.policy, SchedPolicy::VirtualTime);
        let total_slots = keys.len();
        m.log.lock().unwrap_or_else(|e| e.into_inner()).clear();
        let mut part_keys: Vec<Vec<ThreadKey>> = vec![Vec::new(); nparts];
        for k in &keys {
            part_keys[host_part[k.host.index()]].push(*k);
        }
        let parts: Vec<Part> = part_keys
            .into_iter()
            .map(|pkeys| {
                let policy = match &m.policy {
                    SchedPolicy::VirtualTime => PolicyState::VirtualTime,
                    SchedPolicy::Random { seed } => PolicyState::Random {
                        rng: SplitMix64::new(*seed),
                    },
                    SchedPolicy::Pct { seed, depth } => {
                        let mut rng = SplitMix64::new(*seed);
                        // High bit set: every initial priority sits above
                        // every demotion value, and demotions stay
                        // mutually distinct.
                        let prios = pkeys.iter().map(|_| rng.next_u64() | (1 << 63)).collect();
                        let mut change_at: Vec<u64> = (1..*depth)
                            .map(|_| 1 + rng.next_range(PCT_STEP_HINT))
                            .collect();
                        change_at.sort_unstable();
                        PolicyState::Pct {
                            prios,
                            change_at,
                            demote_next: 1 << 62,
                        }
                    }
                    SchedPolicy::Replay { choices } => PolicyState::Replay {
                        choices: Arc::clone(choices),
                        pos: 0,
                    },
                };
                let mut hosts: Vec<HostId> = pkeys.iter().map(|k| k.host).collect();
                hosts.sort_unstable();
                hosts.dedup();
                let slots: Vec<Slot> = pkeys
                    .into_iter()
                    .map(|key| Slot {
                        key,
                        vt: 0,
                        status: Status::Runnable,
                        attached: false,
                    })
                    .collect();
                let cvs = (0..slots.len()).map(|_| Condvar::new()).collect();
                Part {
                    state: Mutex::new(PartState {
                        slots,
                        running: None,
                        at_barrier: true,
                        actions: 0,
                        steps: 0,
                        policy,
                    }),
                    cvs,
                    hosts,
                }
            })
            .collect();
        Self {
            inner: Some(Arc::new(Inner {
                ctl: Mutex::new(Ctl {
                    attached: 0,
                    started: false,
                    arrived: parts.len(),
                    idle: false,
                }),
                main_cv: Condvar::new(),
                poisoned: AtomicBool::new(false),
                external: AtomicBool::new(false),
                window_end: AtomicU64::new(0),
                lookahead,
                gating,
                gate: OnceLock::new(),
                host_part,
                total_slots,
                record: parts.len() == 1,
                log: Arc::clone(&m.log),
                parts,
            })),
        }
    }

    /// Whether deterministic scheduling is active.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of worker partitions (0 when disabled).
    pub fn partitions(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.parts.len())
    }

    /// Whether cross-host deliveries must be gated: deterministic mode
    /// under the canonical virtual-time policy. The network fabric keys
    /// its delivery path off this.
    pub fn gating(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.gating)
    }

    /// Whether an external (unscheduled) actor currently runs inside a
    /// quiesced window; the fabric then delivers directly instead of
    /// enqueueing into the gate.
    pub fn external_active(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.external.load(Ordering::Acquire))
    }

    /// Installs the delivery gate (the fabric's gated-packet store).
    /// One-shot; later calls are ignored.
    pub fn set_gate(&self, gate: Arc<dyn DeliveryGate>) {
        if let Some(inner) = &self.inner {
            let _ = inner.gate.set(gate);
        }
    }

    /// Registers the calling OS thread as the simulated thread `key` and
    /// parks it until every expected thread has attached and the policy
    /// picks it. Must be called on the spawned thread itself. Returns an
    /// inert handle when the scheduler is disabled.
    ///
    /// # Panics
    ///
    /// Panics if `key` names no slot or was already attached.
    pub fn attach(&self, key: ThreadKey) -> SchedThread {
        let Some(inner) = &self.inner else {
            return SchedThread {
                inner: None,
                part: 0,
                id: 0,
            };
        };
        let mut ctl = lock(&inner.ctl);
        let mut found = None;
        for (pi, part) in inner.parts.iter().enumerate() {
            let mut ps = lock(&part.state);
            if let Some(id) = ps.slots.iter().position(|s| s.key == key) {
                assert!(!ps.slots[id].attached, "thread {key} attached twice");
                ps.slots[id].attached = true;
                found = Some((pi, id));
                break;
            }
        }
        let (pi, id) = found.unwrap_or_else(|| panic!("no scheduler slot for thread {key}"));
        ctl.attached += 1;
        if ctl.attached == inner.total_slots {
            // Attach doubles as the first window barrier: every
            // partition is "arrived" until the full thread set exists.
            ctl.started = true;
            barrier_complete(inner, &mut ctl);
        }
        drop(ctl);
        let t = SchedThread {
            inner: Some(Arc::clone(inner)),
            part: pi,
            id,
        };
        let part = &inner.parts[pi];
        let ps = lock(&part.state);
        drop(park_until_running(inner, part, ps, id));
        t
    }

    /// Bumps every partition's action counter from *any* thread
    /// (registered or not) and re-examines a quiescent simulation:
    /// called on deliveries in ungated (exploration-policy) mode and by
    /// external actors that made progress possible.
    pub fn bump_action(&self) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut ctl = lock(&inner.ctl);
        for part in &inner.parts {
            lock(&part.state).actions += 1;
        }
        if ctl.started
            && !inner.external.load(Ordering::Acquire)
            && !inner.poisoned.load(Ordering::Acquire)
            && ctl.arrived == inner.parts.len()
        {
            barrier_complete(inner, &mut ctl);
        }
    }

    /// Bumps the action counter of `host`'s partition only: a delivery
    /// or handler effect whose observers all live on that host. The
    /// partition-local form avoids the cross-partition control lock on
    /// the hot path; it never needs to re-dispatch because the caller is
    /// a currently-running scheduled thread of the same partition (or an
    /// external actor inside a quiesced window, whose re-examination
    /// happens when the window closes).
    pub fn bump_action_host(&self, host: HostId) {
        let Some(inner) = &self.inner else {
            return;
        };
        let pi = inner.host_part.get(host.index()).copied().unwrap_or(0);
        lock(&inner.parts[pi].state).actions += 1;
    }

    /// Waits until the whole simulation is quiescent (every thread done
    /// or blocked with nothing runnable and nothing in flight), then runs
    /// `f` with dispatching suppressed, then re-examines whatever `f`'s
    /// actions made runnable. This is how the cluster's (unscheduled)
    /// main thread injects its shutdown messages without racing the
    /// scheduled world.
    pub fn quiesce_then(&self, f: impl FnOnce()) {
        let Some(inner) = &self.inner else {
            f();
            return;
        };
        let mut ctl = lock(&inner.ctl);
        while !(inner.poisoned.load(Ordering::Acquire) || (ctl.started && ctl.idle)) {
            ctl = wait(&inner.main_cv, ctl);
        }
        inner.external.store(true, Ordering::Release);
        drop(ctl);
        f();
        let mut ctl = lock(&inner.ctl);
        inner.external.store(false, Ordering::Release);
        if !inner.poisoned.load(Ordering::Acquire) && ctl.arrived == inner.parts.len() {
            barrier_complete(inner, &mut ctl);
        }
    }

    /// Number of scheduling decisions taken so far, summed over
    /// partitions.
    pub fn steps(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.parts.iter().map(|p| lock(&p.state).steps).sum(),
        }
    }
}

/// One simulated thread's handle into the scheduler. Obtained from
/// [`Scheduler::attach`]; all methods are no-ops on a disabled handle.
/// Dropping the handle marks the thread done and hands control on.
pub struct SchedThread {
    inner: Option<Arc<Inner>>,
    part: usize,
    id: usize,
}

impl SchedThread {
    /// An inert handle (what a disabled scheduler hands out).
    pub fn disabled() -> Self {
        Self {
            inner: None,
            part: 0,
            id: 0,
        }
    }

    /// Whether this thread is cooperatively scheduled.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A cooperative yield point: records the thread's current virtual
    /// time, lets the policy pick the next thread (possibly this one
    /// again), and returns when this thread is picked again.
    pub fn yield_now(&self, vt: Ns) {
        let Some(inner) = &self.inner else {
            return;
        };
        let part = &inner.parts[self.part];
        let mut ps = lock(&part.state);
        if inner.poisoned.load(Ordering::Acquire) {
            return;
        }
        debug_assert_eq!(ps.running, Some(self.id), "yield from a paused thread");
        ps.slots[self.id].vt = vt;
        match dispatch_in(inner, part, &mut ps) {
            Verdict::Dispatched => drop(park_until_running(inner, part, ps, self.id)),
            Verdict::Barrier => {
                arrive_at_barrier(inner, ps);
                let ps = lock(&part.state);
                drop(park_until_running(inner, part, ps, self.id));
            }
        }
    }

    /// Bumps the partition's action counter: the caller just did
    /// something that may have unblocked a peer on its own host
    /// (fulfilled a waiter, mutated protocol state) outside the
    /// network-delivery hook.
    pub fn action(&self) {
        let Some(inner) = &self.inner else {
            return;
        };
        lock(&inner.parts[self.part].state).actions += 1;
    }

    /// Blocks until `check` produces a value, yielding to other threads
    /// while the condition is unmet. `check` runs *while this thread
    /// holds the schedule* (no scheduler lock held), so it may touch
    /// channels and waiter slots freely; it must be side-effect-free on
    /// failure. `vt` is the block-entry virtual time used for the
    /// policy's tie-break while parked.
    pub fn block_until<T>(&self, vt: Ns, mut check: impl FnMut() -> Option<T>) -> BlockOutcome<T> {
        let Some(inner) = &self.inner else {
            unreachable!("block_until on a disabled scheduler handle");
        };
        let part = &inner.parts[self.part];
        loop {
            // Snapshot the counter *before* checking: an action landing
            // between a failed check and the park below leaves `seen`
            // stale, so the thread stays schedulable and re-checks —
            // no lost wake-up.
            let seen = {
                let ps = lock(&part.state);
                if inner.poisoned.load(Ordering::Acquire) {
                    return BlockOutcome::Poisoned;
                }
                ps.actions
            };
            if let Some(v) = check() {
                return BlockOutcome::Ready(v);
            }
            let mut ps = lock(&part.state);
            if inner.poisoned.load(Ordering::Acquire) {
                return BlockOutcome::Poisoned;
            }
            ps.slots[self.id].vt = vt;
            ps.slots[self.id].status = Status::Blocked { seen };
            let mut ps = match dispatch_in(inner, part, &mut ps) {
                Verdict::Dispatched => park_until_running(inner, part, ps, self.id),
                Verdict::Barrier => {
                    arrive_at_barrier(inner, ps);
                    let ps = lock(&part.state);
                    park_until_running(inner, part, ps, self.id)
                }
            };
            if inner.poisoned.load(Ordering::Acquire) {
                return BlockOutcome::Poisoned;
            }
            ps.slots[self.id].status = Status::Runnable;
        }
    }

    /// Marks the thread done and hands control to the next runnable
    /// thread. Idempotent; also called on drop.
    pub fn finish(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let part = &inner.parts[self.part];
        let mut ps = lock(&part.state);
        ps.slots[self.id].status = Status::Done;
        // Finishing is an action: a sibling blocked on state this thread
        // just released (a cancelled waiter, a final message) must
        // re-check.
        ps.actions += 1;
        if inner.poisoned.load(Ordering::Acquire) {
            return;
        }
        match dispatch_in(&inner, part, &mut ps) {
            Verdict::Dispatched => {}
            Verdict::Barrier => arrive_at_barrier(&inner, ps),
        }
    }
}

impl Drop for SchedThread {
    fn drop(&mut self) {
        self.finish();
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(|e| e.into_inner())
}

fn park_until_running<'a>(
    inner: &Inner,
    part: &'a Part,
    mut ps: MutexGuard<'a, PartState>,
    id: usize,
) -> MutexGuard<'a, PartState> {
    while !(inner.poisoned.load(Ordering::Acquire) || ps.running == Some(id)) {
        ps = wait(&part.cvs[id], ps);
    }
    ps
}

/// Whether slot `s` may be scheduled right now.
fn is_candidate(s: &Slot, actions: u64) -> bool {
    match s.status {
        Status::Runnable => true,
        Status::Blocked { seen } => seen < actions,
        Status::Done => false,
    }
}

enum Verdict {
    /// A thread was picked and its condvar notified.
    Dispatched,
    /// Nothing dispatchable below the window end; the partition must
    /// arrive at the window barrier.
    Barrier,
}

/// Picks and installs the partition's next thread to run, releasing any
/// gated deliveries the canonical virtual-time order reaches first. Call
/// with the partition's state lock held, from the thread relinquishing
/// control or from the window barrier.
fn dispatch_in(inner: &Inner, part: &Part, ps: &mut PartState) -> Verdict {
    ps.running = None;
    if inner.poisoned.load(Ordering::Acquire) {
        return Verdict::Barrier;
    }
    let window_end = inner.window_end.load(Ordering::Acquire);
    loop {
        let actions = ps.actions;
        // Candidate scans are allocation-free: a schedule takes millions
        // of steps and a Vec per step would dominate the scheduler's
        // cost.
        let min_cand = (0..ps.slots.len())
            .filter(|&i| is_candidate(&ps.slots[i], actions))
            .min_by_key(|&i| (ps.slots[i].vt, ps.slots[i].key));
        // Gated cross-host deliveries: release the earliest pending
        // packet for this partition's hosts when it precedes (or ties —
        // the delivery enables the receiver) every candidate thread.
        // Releasing before dispatching keeps the canonical virtual-time
        // total order across the wire, identically at any partition
        // count.
        if inner.gating {
            if let Some(gate) = inner.gate.get() {
                let mut best: Option<(Ns, HostId)> = None;
                for &h in &part.hosts {
                    let r = gate.min_pending(h);
                    if r != Ns::MAX && best.is_none_or(|b| (r, h) < b) {
                        best = Some((r, h));
                    }
                }
                if let Some((r, h)) = best {
                    let cand_vt = min_cand.map(|i| ps.slots[i].vt);
                    if r < window_end && cand_vt.is_none_or(|cv| r <= cv) {
                        gate.release_next(h);
                        // The delivery may unblock a receiver: count it
                        // as a partition-local action and re-derive the
                        // candidate set.
                        ps.actions += 1;
                        continue;
                    }
                }
            }
        }
        let Some(min_i) = min_cand else {
            return Verdict::Barrier;
        };
        if ps.slots[min_i].vt >= window_end {
            return Verdict::Barrier;
        }
        let step = ps.steps + 1;
        let slots = &ps.slots;
        let n_candidates = slots.iter().filter(|s| is_candidate(s, actions)).count();
        let chosen = match &mut ps.policy {
            PolicyState::VirtualTime => None,
            PolicyState::Random { rng } => (0..slots.len())
                .filter(|&i| is_candidate(&slots[i], actions))
                .nth(rng.next_usize(n_candidates)),
            PolicyState::Pct {
                prios,
                change_at,
                demote_next,
            } => {
                let pick = (0..slots.len())
                    .filter(|&i| is_candidate(&slots[i], actions))
                    .max_by_key(|&i| prios[i])
                    .expect("non-empty candidate set");
                while change_at.first() == Some(&step) {
                    change_at.remove(0);
                    prios[pick] = *demote_next;
                    *demote_next -= 1;
                }
                Some(pick)
            }
            PolicyState::Replay { choices, pos } => {
                let want = choices.get(*pos).map(|&c| c as usize);
                *pos += 1;
                // Exhausted or invalid choices fall back to virtual-time
                // order.
                want.filter(|&w| w < slots.len() && is_candidate(&slots[w], actions))
            }
        };
        let pick = chosen.unwrap_or(min_i);
        ps.steps += 1;
        if inner.record {
            inner
                .log
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(pick as u32);
        }
        ps.running = Some(pick);
        part.cvs[pick].notify_one();
        return Verdict::Dispatched;
    }
}

/// Hands the caller's partition to the window barrier: everything below
/// the window end is done. Consumes the partition guard (the barrier
/// takes the control lock, which must never be acquired while holding a
/// partition lock).
fn arrive_at_barrier(inner: &Inner, mut ps: MutexGuard<'_, PartState>) {
    ps.at_barrier = true;
    drop(ps);
    let mut ctl = lock(&inner.ctl);
    if inner.poisoned.load(Ordering::Acquire) {
        return;
    }
    ctl.arrived += 1;
    if ctl.started && ctl.arrived == inner.parts.len() {
        barrier_complete(inner, &mut ctl);
    }
}

/// The window barrier: every partition has arrived. Derives the next
/// window `[W0, W0 + lookahead)` from the globally-minimal next event
/// (runnable candidate or pending gated delivery) and releases every
/// partition with work below the window end. With nothing pending
/// anywhere, rules the run idle — or deadlocked, if an application
/// thread is still blocked. Runs with the ctl lock held; every scheduled
/// thread is parked, so partition states and the gate are stable.
fn barrier_complete(inner: &Inner, ctl: &mut Ctl) {
    loop {
        if inner.poisoned.load(Ordering::Acquire) {
            return;
        }
        let mut w0 = Ns::MAX;
        let mut stuck_app = false;
        for part in &inner.parts {
            let ps = lock(&part.state);
            let actions = ps.actions;
            for s in &ps.slots {
                if is_candidate(s, actions) {
                    w0 = w0.min(s.vt);
                }
                if s.key.class == ThreadClass::App && s.status != Status::Done {
                    stuck_app = true;
                }
            }
        }
        let gate = if inner.gating { inner.gate.get() } else { None };
        if let Some(g) = gate {
            for part in &inner.parts {
                for &h in &part.hosts {
                    w0 = w0.min(g.min_pending(h));
                }
            }
        }
        if w0 == Ns::MAX {
            // Nothing runnable and nothing in flight. Fault-held
            // (reorder) packets are the last resort — the
            // receiver-driven rescue poll is disabled under gating —
            // flush them and re-examine.
            if let Some(g) = gate {
                let rescued = g.flush_held();
                if !rescued.is_empty() {
                    for h in rescued {
                        let pi = inner.host_part.get(h.index()).copied().unwrap_or(0);
                        lock(&inner.parts[pi].state).actions += 1;
                    }
                    continue;
                }
            }
            if stuck_app {
                // A blocked application thread nobody can ever wake: the
                // schedule deadlocked. Poison so every thread unwinds
                // with a typed error instead of hanging the run.
                poison(inner);
            } else {
                // Only servers are parked on empty inboxes; idle until
                // an external action (the cluster's shutdown)
                // re-examines.
                ctl.idle = true;
                inner.main_cv.notify_all();
            }
            return;
        }
        ctl.idle = false;
        inner
            .window_end
            .store(w0.saturating_add(inner.lookahead), Ordering::Release);
        let mut dispatched_any = false;
        for part in &inner.parts {
            let mut ps = lock(&part.state);
            match dispatch_in(inner, part, &mut ps) {
                Verdict::Dispatched => {
                    ps.at_barrier = false;
                    ctl.arrived -= 1;
                    dispatched_any = true;
                }
                Verdict::Barrier => {}
            }
        }
        if dispatched_any {
            return;
        }
        // The window's only events were packet releases to hosts with no
        // waiting receiver (drained by dispatch_in above); re-derive the
        // next window from what is left.
    }
}

/// Marks the schedule poisoned and wakes every parked thread (under
/// their partition locks, so nobody is between a predicate check and a
/// wait) plus the quiesce waiter. Call with the ctl lock held.
fn poison(inner: &Inner) {
    inner.poisoned.store(true, Ordering::SeqCst);
    for part in &inner.parts {
        let _guard = lock(&part.state);
        for cv in &part.cvs {
            cv.notify_all();
        }
    }
    inner.main_cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn keys(apps: usize) -> Vec<ThreadKey> {
        let mut v = vec![ThreadKey::server(HostId(0))];
        for t in 0..apps {
            v.push(ThreadKey::app(HostId(0), t as u16));
        }
        v
    }

    #[test]
    fn disabled_scheduler_is_inert() {
        let s = Scheduler::disabled();
        assert!(!s.is_enabled());
        assert!(!s.gating());
        assert_eq!(s.partitions(), 0);
        let t = s.attach(ThreadKey::app(HostId(0), 0));
        assert!(!t.enabled());
        t.yield_now(5);
        s.bump_action();
        s.bump_action_host(HostId(0));
        s.quiesce_then(|| {});
        assert_eq!(s.steps(), 0);
        assert_eq!(SchedMode::off().decisions(), Vec::<u32>::new());
    }

    /// Two producers and one counter-consumer, serialized: the consumer
    /// blocks until both producers bumped, and the whole interleaving is
    /// recorded and identical run-to-run.
    fn run_once(mode: &SchedMode) -> (u64, Vec<u32>) {
        let sched = Scheduler::new(mode, keys(2));
        let counter = Arc::new(AtomicU64::new(0));
        let order = Arc::new(Mutex::new(Vec::<u64>::new()));
        std::thread::scope(|scope| {
            for lane in 0..2u16 {
                let sched = sched.clone();
                let counter = Arc::clone(&counter);
                let order = Arc::clone(&order);
                scope.spawn(move || {
                    let t = sched.attach(ThreadKey::app(HostId(0), lane));
                    for i in 0..3 {
                        counter.fetch_add(1, Ordering::Relaxed);
                        order.lock().unwrap().push(u64::from(lane) * 10 + i);
                        t.action();
                        t.yield_now(i);
                    }
                });
            }
            let sched2 = sched.clone();
            let counter2 = Arc::clone(&counter);
            scope.spawn(move || {
                let t = sched2.attach(ThreadKey::server(HostId(0)));
                let got = t.block_until(0, || {
                    (counter2.load(Ordering::Relaxed) >= 6)
                        .then(|| counter2.load(Ordering::Relaxed))
                });
                match got {
                    BlockOutcome::Ready(v) => assert_eq!(v, 6),
                    BlockOutcome::Poisoned => panic!("unexpected poison"),
                }
            });
        });
        let hash = order
            .lock()
            .unwrap()
            .iter()
            .fold(17u64, |h, &x| h.wrapping_mul(31).wrapping_add(x));
        (hash, mode.decisions())
    }

    #[test]
    fn same_policy_same_interleaving() {
        for mode in [
            SchedMode::deterministic(),
            SchedMode::random(42),
            SchedMode::pct(7, 3),
        ] {
            let (h1, d1) = run_once(&mode);
            let (h2, d2) = run_once(&mode);
            assert_eq!(h1, h2, "{} interleaving drifted", mode.policy_name());
            assert_eq!(d1, d2, "{} decision log drifted", mode.policy_name());
            assert!(!d1.is_empty());
        }
    }

    #[test]
    fn replay_reproduces_a_random_walk() {
        let random = SchedMode::random(1234);
        let (h1, decisions) = run_once(&random);
        let replay = SchedMode::replay(decisions.clone());
        let (h2, d2) = run_once(&replay);
        assert_eq!(h1, h2, "replay produced a different interleaving");
        assert_eq!(decisions, d2, "replay re-recorded a different log");
    }

    #[test]
    fn different_seeds_usually_differ() {
        // With three threads and nine yield points at least one of these
        // seeds must deviate from the virtual-time order.
        let (base, _) = run_once(&SchedMode::deterministic());
        let diverged = (0..8u64).any(|s| run_once(&SchedMode::random(s)).0 != base);
        assert!(diverged, "random walks never left the default order");
    }

    #[test]
    fn deadlock_poisons_instead_of_hanging() {
        let mode = SchedMode::deterministic();
        let sched = Scheduler::new(&mode, vec![ThreadKey::app(HostId(0), 0)]);
        let outcome = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let t = sched.attach(ThreadKey::app(HostId(0), 0));
                    // A condition nothing will ever satisfy.
                    match t.block_until(0, || None::<()>) {
                        BlockOutcome::Poisoned => "poisoned",
                        BlockOutcome::Ready(()) => "ready",
                    }
                })
                .join()
                .unwrap()
        });
        assert_eq!(outcome, "poisoned");
    }

    #[test]
    fn quiesce_runs_after_all_threads_block_or_finish() {
        let mode = SchedMode::deterministic();
        let sched = Scheduler::new(&mode, keys(1));
        let flag = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            let sched_app = sched.clone();
            scope.spawn(move || {
                let t = sched_app.attach(ThreadKey::app(HostId(0), 0));
                t.yield_now(1);
                // App finishes; server stays blocked on the flag.
            });
            let sched_srv = sched.clone();
            let flag_srv = Arc::clone(&flag);
            scope.spawn(move || {
                let t = sched_srv.attach(ThreadKey::server(HostId(0)));
                match t.block_until(0, || {
                    let v = flag_srv.load(Ordering::Relaxed);
                    (v != 0).then_some(v)
                }) {
                    BlockOutcome::Ready(v) => assert_eq!(v, 9),
                    BlockOutcome::Poisoned => panic!("server poisoned"),
                }
            });
            // Main thread: wait for quiescence, then unblock the server
            // the way the cluster injects its shutdown messages.
            let flag_main = Arc::clone(&flag);
            sched.quiesce_then(move || {
                flag_main.store(9, Ordering::Relaxed);
            });
            sched.bump_action();
        });
    }

    fn two_host_keys() -> Vec<ThreadKey> {
        vec![
            ThreadKey::server(HostId(0)),
            ThreadKey::server(HostId(1)),
            ThreadKey::app(HostId(0), 0),
            ThreadKey::app(HostId(1), 0),
        ]
    }

    #[test]
    fn partitioned_threads_run_to_completion() {
        // Two partitions advancing through many short windows: every
        // thread must make all of its yields despite barrier round trips.
        let mode = SchedMode::deterministic();
        let sched = Scheduler::new_parallel(&mode, two_host_keys(), vec![0, 1], 2, 10);
        assert_eq!(sched.partitions(), 2);
        let done = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for h in 0..2u16 {
                let sched_srv = sched.clone();
                scope.spawn(move || {
                    let mut t = sched_srv.attach(ThreadKey::server(HostId(h)));
                    t.finish();
                });
                let sched_app = sched.clone();
                let done = Arc::clone(&done);
                scope.spawn(move || {
                    let t = sched_app.attach(ThreadKey::app(HostId(h), 0));
                    for i in 0..50u64 {
                        // Strides differ per host so the partitions hit
                        // window edges at different times.
                        t.yield_now(i * (3 + u64::from(h)));
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 2);
        assert!(sched.steps() >= 100);
        // No total order exists across partitions: nothing recorded.
        assert!(mode.decisions().is_empty());
    }

    #[test]
    #[should_panic(expected = "sequential-only")]
    fn parallel_rejects_exploration_policies() {
        let _ = Scheduler::new_parallel(
            &SchedMode::random(1),
            two_host_keys(),
            vec![0, 1],
            2,
            12_000,
        );
    }

    #[test]
    fn partitioned_deadlock_poisons_globally() {
        let mode = SchedMode::deterministic();
        let sched = Scheduler::new_parallel(&mode, two_host_keys(), vec![0, 1], 2, 10);
        let poisoned = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for h in 0..2u16 {
                let sched_srv = sched.clone();
                scope.spawn(move || {
                    let mut t = sched_srv.attach(ThreadKey::server(HostId(h)));
                    t.finish();
                });
            }
            let sched_done = sched.clone();
            scope.spawn(move || {
                let t = sched_done.attach(ThreadKey::app(HostId(0), 0));
                t.yield_now(1);
            });
            let sched_stuck = sched.clone();
            let poisoned = Arc::clone(&poisoned);
            scope.spawn(move || {
                let t = sched_stuck.attach(ThreadKey::app(HostId(1), 0));
                if let BlockOutcome::Poisoned = t.block_until(0, || None::<()>) {
                    poisoned.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert_eq!(poisoned.load(Ordering::Relaxed), 1);
    }

    /// One parked test message: destination host and the flag its
    /// release bumps.
    type TestPending = BTreeMap<(Ns, u64), (HostId, Arc<AtomicU64>)>;

    /// A miniature delivery gate: messages carry a release time and a
    /// destination flag to bump, standing in for the network fabric.
    struct TestGate {
        pending: Mutex<TestPending>,
        seq: AtomicU64,
    }

    impl TestGate {
        fn new() -> Self {
            Self {
                pending: Mutex::new(BTreeMap::new()),
                seq: AtomicU64::new(0),
            }
        }

        fn send(&self, release: Ns, to: HostId, flag: &Arc<AtomicU64>) {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            self.pending
                .lock()
                .unwrap()
                .insert((release, seq), (to, Arc::clone(flag)));
        }
    }

    impl DeliveryGate for TestGate {
        fn min_pending(&self, host: HostId) -> Ns {
            self.pending
                .lock()
                .unwrap()
                .iter()
                .filter(|(_, (to, _))| *to == host)
                .map(|((r, _), _)| *r)
                .next()
                .unwrap_or(Ns::MAX)
        }

        fn release_next(&self, host: HostId) {
            let mut p = self.pending.lock().unwrap();
            let key = p
                .iter()
                .filter(|(_, (to, _))| *to == host)
                .map(|(k, _)| *k)
                .next()
                .expect("release with nothing pending");
            let (_, flag) = p.remove(&key).unwrap();
            flag.fetch_add(1, Ordering::Relaxed);
        }

        fn flush_held(&self) -> Vec<HostId> {
            Vec::new()
        }
    }

    /// A cross-partition "message": host 0's app enqueues a gated
    /// delivery for host 1, whose server blocks on the flag it bumps.
    /// The delivery lands beyond the first window, so the server can
    /// only wake if the window barrier advances time and releases it.
    fn gated_handoff(workers: usize, map: Vec<usize>) {
        let mode = SchedMode::deterministic();
        let lookahead = 12;
        let sched = Scheduler::new_parallel(&mode, two_host_keys(), map, workers, lookahead);
        let gate = Arc::new(TestGate::new());
        sched.set_gate(Arc::clone(&gate) as Arc<dyn DeliveryGate>);
        let flag = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            let sched_srv0 = sched.clone();
            scope.spawn(move || {
                let mut t = sched_srv0.attach(ThreadKey::server(HostId(0)));
                t.finish();
            });
            let sched_app1 = sched.clone();
            scope.spawn(move || {
                let mut t = sched_app1.attach(ThreadKey::app(HostId(1), 0));
                t.finish();
            });
            let sched_send = sched.clone();
            let gate_send = Arc::clone(&gate);
            let flag_send = Arc::clone(&flag);
            scope.spawn(move || {
                let t = sched_send.attach(ThreadKey::app(HostId(0), 0));
                t.yield_now(5);
                // "Send" at vt 5: released no earlier than 5 + lookahead.
                gate_send.send(5 + lookahead, HostId(1), &flag_send);
                t.yield_now(6);
            });
            let sched_recv = sched.clone();
            let flag_recv = Arc::clone(&flag);
            scope.spawn(move || {
                let t = sched_recv.attach(ThreadKey::server(HostId(1)));
                match t.block_until(0, || {
                    let v = flag_recv.load(Ordering::Relaxed);
                    (v > 0).then_some(v)
                }) {
                    BlockOutcome::Ready(v) => assert_eq!(v, 1),
                    BlockOutcome::Poisoned => panic!("gated delivery never released"),
                }
            });
        });
        assert_eq!(gate.min_pending(HostId(1)), Ns::MAX, "gate drained");
    }

    #[test]
    fn gated_delivery_crosses_partitions() {
        gated_handoff(2, vec![0, 1]);
    }

    #[test]
    fn gated_delivery_works_single_partition() {
        gated_handoff(1, vec![0, 0]);
    }

    #[test]
    fn default_map_is_contiguous_and_balanced() {
        let m = ParallelConfig::default_map(8, 4);
        assert_eq!(m, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        let m = ParallelConfig::default_map(5, 2);
        assert_eq!(m, vec![0, 0, 0, 1, 1]);
        // Never names a worker out of range, even degenerate shapes.
        for hosts in 1..20 {
            for workers in 1..10 {
                for (h, w) in ParallelConfig::default_map(hosts, workers)
                    .iter()
                    .enumerate()
                {
                    assert!(*w < workers, "hosts={hosts} workers={workers} h={h}");
                }
            }
        }
    }

    #[test]
    fn empty_partitions_are_compacted() {
        // Map everything to worker 3 of 4: one real partition.
        let mode = SchedMode::deterministic();
        let sched = Scheduler::new_parallel(&mode, two_host_keys(), vec![3, 3], 4, 10);
        assert_eq!(sched.partitions(), 1);
    }
}
