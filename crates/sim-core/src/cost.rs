//! The calibrated cost model.
//!
//! Every constant here is taken from the paper: Table 1 ("Cost of basic
//! operations in millipage"), §3.5 (FastMessages latencies, the NT timer
//! anomaly), §4.2 (barrier/lock/diff costs). The reproduction charges these
//! virtual costs at the same points in the protocol where the real system
//! spends them, so latency-derived results keep the paper's shape.

use crate::clock::Ns;
use crate::rng::SplitMix64;

/// Costs of the basic operations of the simulated platform.
///
/// Defaults reproduce the paper's testbed: 300 MHz Pentium II, Windows NT
/// 4.0, Illinois FastMessages on switched Myrinet.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Delivering an access fault to the user-level handler (Table 1: 26 µs).
    pub access_fault: Ns,
    /// Querying a vpage protection (Table 1: 7 µs).
    pub get_protection: Ns,
    /// Changing a vpage protection (Table 1: 12 µs).
    pub set_protection: Ns,
    /// Fixed per-message cost: send + receive of a 32-byte header
    /// (Table 1: 12 µs). Used as the latency-model intercept.
    pub msg_base: Ns,
    /// Self-delivery cost: the manager host forwarding to itself is a
    /// local handler call, not a wire round trip.
    pub self_msg: Ns,
    /// Per-byte wire cost beyond the header, fitted to Table 1's
    /// 0.5 KB → 22 µs, 1 KB → 34 µs, 4 KB → 90 µs (≈ 19 ns/byte).
    pub msg_per_byte_ns: f64,
    /// Minipage translation: MPT lookup at the manager (Table 1: 7 µs).
    pub mpt_lookup: Ns,
    /// Waking a blocked thread (`SetEvent` + context switch).
    pub event_signal: Ns,
    /// Fixed DSM software overhead per data-carrying protocol step
    /// (handler dispatch, request bookkeeping); calibrated so a one-hop
    /// 128-byte read fault lands at the paper's measured 204 µs, which
    /// exceeds the sum of its Table 1 components.
    pub dsm_overhead: Ns,
    /// Fixed part of a barrier (§4.2: barriers take 59–153 µs linearly in
    /// the number of hosts; fit: 46 µs + 13.4 µs/host).
    pub barrier_base: Ns,
    /// Per-host part of a barrier.
    pub barrier_per_host: Ns,
    /// Manager-side handling of a lock acquire/release request
    /// (calibrated so an uncontended lock+unlock lands in the paper's
    /// 67–80 µs window).
    pub lock_service: Ns,
    /// Run-length diff creation cost per byte (§4.2: 250 µs per 4 KB page,
    /// linear in page size ⇒ ≈ 61 ns/byte). Only charged by the HLRC
    /// extension and the diff benchmarks — the Millipage protocol itself
    /// never diffs, which is the point of the paper.
    pub diff_per_byte_ns: f64,
    /// Applying (patching) a diff, per byte.
    pub patch_per_byte_ns: f64,
    /// Local memory copy per byte (used when the privileged view copies a
    /// minipage into / out of the application views' backing page).
    pub copy_per_byte_ns: f64,
    /// How receive-side polling delays are modeled (§3.5.1).
    pub service_delay: ServiceDelayModel,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            access_fault: 26_000,
            get_protection: 7_000,
            set_protection: 12_000,
            msg_base: 12_000,
            self_msg: 1_000,
            msg_per_byte_ns: 19.0,
            mpt_lookup: 7_000,
            event_signal: 5_000,
            dsm_overhead: 45_000,
            barrier_base: 20_000,
            barrier_per_host: 13_400,
            lock_service: 25_000,
            diff_per_byte_ns: 61.0,
            patch_per_byte_ns: 20.0,
            copy_per_byte_ns: 3.0,
            service_delay: ServiceDelayModel::default(),
        }
    }
}

impl CostModel {
    /// A cost model with instantaneous polling, as if the FM polling
    /// problem and the NT timer resolution problem of §3.5 were solved.
    ///
    /// The paper predicts (§4.3.1) that total fault-service time "will
    /// further decrease once the polling and timer resolution problems are
    /// solved"; the `repro` harness offers this model for that what-if.
    pub fn fast_polling() -> Self {
        Self {
            service_delay: ServiceDelayModel {
                poller_delay: 2_000,
                sweeper_period: 0,
                late_tick_prob: 0.0,
                late_tick_extra: 0,
            },
            ..Self::default()
        }
    }

    /// End-to-end wire + software time for a message of `bytes` payload
    /// bytes (header included in `msg_base`).
    ///
    /// Matches Table 1: 32 B header → 12 µs, 0.5 KB → ≈22 µs, 1 KB →
    /// ≈31 µs, 4 KB → ≈90 µs.
    #[inline]
    pub fn msg_time(&self, bytes: usize) -> Ns {
        self.msg_base + (self.msg_per_byte_ns * bytes as f64) as Ns
    }

    /// Cost of a barrier among `hosts` hosts (§4.2).
    #[inline]
    pub fn barrier_time(&self, hosts: usize) -> Ns {
        self.barrier_base + self.barrier_per_host * hosts as Ns
    }

    /// Cost of creating a run-length diff over `bytes` bytes (§4.2).
    #[inline]
    pub fn diff_time(&self, bytes: usize) -> Ns {
        (self.diff_per_byte_ns * bytes as f64) as Ns
    }

    /// Cost of a local privileged-view copy of `bytes` bytes.
    #[inline]
    pub fn copy_time(&self, bytes: usize) -> Ns {
        (self.copy_per_byte_ns * bytes as f64) as Ns
    }

    /// The minimum latency of any cross-host message: the header-only
    /// send/receive cost, [`CostModel::msg_base`]. Every wire message
    /// costs at least this much — payload bytes, fault jitter and
    /// retransmission backoff only *add* delay — so it is a sound
    /// conservative **lookahead** for parallel simulation: an event at
    /// virtual time `t` on one host cannot affect another host before
    /// `t + min_remote_latency()`.
    #[inline]
    pub fn min_remote_latency(&self) -> Ns {
        self.msg_base
    }
}

/// Receive-side service-delay model (§3.5.1 of the paper).
///
/// Millipage receives messages by polling. When the host is otherwise idle,
/// the low-priority *poller* thread picks messages up almost immediately.
/// When the host's application threads are computing, the poller is starved
/// and the *sweeper* — woken by a 1 ms multimedia timer with the extreme
/// jitter reported by Jones & Regehr — picks the message up at the next
/// tick. The paper measured an average extra delay above 500 µs from this
/// effect, dominating its 750 µs average minipage request service time.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceDelayModel {
    /// Delay when the host is idle and the poller is running (≈ one poll
    /// loop iteration).
    pub poller_delay: Ns,
    /// Sweeper wake-up period (NT multimedia timer: 1 ms). A message that
    /// arrives while the host computes waits uniformly within one period.
    pub sweeper_period: Ns,
    /// Probability that a timer tick is late (the NT anomaly: "most ticks
    /// appear either within several tens of microseconds ... or take
    /// several milliseconds").
    pub late_tick_prob: f64,
    /// Extra delay bound for a late tick (uniform in `0..late_tick_extra`).
    pub late_tick_extra: Ns,
}

impl Default for ServiceDelayModel {
    fn default() -> Self {
        Self {
            poller_delay: 5_000,
            sweeper_period: 1_000_000,
            late_tick_prob: 0.1,
            late_tick_extra: 3_000_000,
        }
    }
}

impl ServiceDelayModel {
    /// Samples the delay between a message's arrival and the moment a DSM
    /// server thread starts handling it.
    ///
    /// `busy` says whether the host's application threads were computing at
    /// the arrival time (server threads then rely on the sweeper).
    pub fn sample(&self, busy: bool, rng: &mut SplitMix64) -> Ns {
        if !busy || self.sweeper_period == 0 {
            return self.poller_delay;
        }
        let within_period = rng.next_range(self.sweeper_period.max(1));
        let late = if self.late_tick_prob > 0.0 && rng.next_f64() < self.late_tick_prob {
            rng.next_range(self.late_tick_extra.max(1))
        } else {
            0
        };
        within_period + late
    }

    /// Mean of the sampled delay for a busy host (used by tests and docs).
    pub fn busy_mean(&self) -> f64 {
        self.sweeper_period as f64 / 2.0 + self.late_tick_prob * self.late_tick_extra as f64 / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_time_matches_table_1() {
        let c = CostModel::default();
        // Header-only messages cost 12 µs.
        assert_eq!(c.msg_time(0), 12_000);
        // Table 1 data points, within ±15%.
        let close = |got: Ns, want: Ns| {
            let (g, w) = (got as f64, want as f64);
            assert!((g - w).abs() / w < 0.15, "got {got}, want ~{want}");
        };
        close(c.msg_time(512), 22_000);
        close(c.msg_time(1024), 34_000);
        close(c.msg_time(4096), 90_000);
    }

    #[test]
    fn barrier_time_is_linear_and_paper_scaled() {
        let c = CostModel::default();
        // The manager-side charge; end-to-end (§4.2's 59–153 µs window)
        // adds the enter/release messages and is measured by the bench
        // scenarios. Here: linearity and the right order of magnitude.
        let b1 = c.barrier_time(1);
        let b8 = c.barrier_time(8);
        assert!((25_000..=80_000).contains(&b1), "b1 = {b1}");
        assert!((100_000..=160_000).contains(&b8), "b8 = {b8}");
        assert_eq!(c.barrier_time(5) - c.barrier_time(4), c.barrier_per_host);
    }

    #[test]
    fn diff_time_matches_section_4_2() {
        let c = CostModel::default();
        let d = c.diff_time(4096);
        assert!((230_000..=270_000).contains(&d), "4 KB diff = {d} ns");
        // Linear in the page size.
        assert_eq!(c.diff_time(2048) * 2, c.diff_time(4096));
    }

    #[test]
    fn lookahead_is_the_header_only_message_cost() {
        let c = CostModel::default();
        assert_eq!(c.min_remote_latency(), c.msg_base);
        // Lookahead must lower-bound every possible message time.
        for bytes in [0usize, 1, 32, 512, 4096] {
            assert!(c.msg_time(bytes) >= c.min_remote_latency());
        }
    }

    #[test]
    fn idle_host_service_delay_is_poller_delay() {
        let m = ServiceDelayModel::default();
        let mut rng = SplitMix64::new(1);
        assert_eq!(m.sample(false, &mut rng), m.poller_delay);
    }

    #[test]
    fn busy_host_service_delay_has_paper_scale_mean() {
        let m = ServiceDelayModel::default();
        let mut rng = SplitMix64::new(42);
        let n = 20_000;
        let total: u128 = (0..n).map(|_| m.sample(true, &mut rng) as u128).sum();
        let mean = (total / n as u128) as f64;
        // Paper §4.3.1: "an average of more than 500 µs" extra delay.
        assert!(
            (500_000.0..900_000.0).contains(&mean),
            "mean busy delay = {mean} ns"
        );
    }

    #[test]
    fn fast_polling_removes_sweeper_delay() {
        let m = CostModel::fast_polling();
        let mut rng = SplitMix64::new(7);
        assert_eq!(m.service_delay.sample(true, &mut rng), 2_000);
    }

    #[test]
    fn busy_mean_formula_matches_samples() {
        let m = ServiceDelayModel::default();
        let mut rng = SplitMix64::new(3);
        let n = 50_000;
        let total: u128 = (0..n).map(|_| m.sample(true, &mut rng) as u128).sum();
        let empirical = (total / n as u128) as f64;
        let analytic = m.busy_mean();
        assert!(
            (empirical - analytic).abs() / analytic < 0.05,
            "empirical {empirical} vs analytic {analytic}"
        );
    }
}
