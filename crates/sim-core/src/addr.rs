//! Virtual addresses and the shared view geometry.

use std::fmt;

/// Default base virtual address of view 0.
pub const DEFAULT_BASE: u64 = 0x1000_0000;

/// Default page size (the paper's testbed: 4 KB Pentium pages).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// A virtual address in the shared region.
///
/// Addresses are plain numbers — they carry no lifetime or provenance —
/// because simulated hosts exchange them in protocol messages exactly like
/// the real system exchanges raw pointers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VAddr(pub u64);

impl VAddr {
    /// Byte offset addition (pointer-arithmetic naming on purpose: these
    /// are addresses, not numbers).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, delta: usize) -> VAddr {
        VAddr(self.0 + delta as u64)
    }
}

impl fmt::Debug for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VAddr({:#x})", self.0)
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A decoded virtual address: which view, which page of the memory object,
/// and the offset within that page.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Loc {
    /// View index; `geometry.priv_view()` is the privileged view.
    pub view: usize,
    /// Physical page index within the memory object.
    pub page: usize,
    /// Byte offset within the page.
    pub offset: usize,
}

/// The layout shared by every host: one memory object of `pages` physical
/// pages, mapped `views + 1` times (application views plus the privileged
/// view) at consecutive spans starting at `base`.
///
/// §2.4: "Suppose the maximal number of minipages that reside on the same
/// page of the memory object is n. We thus need n+1 different views."
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Geometry {
    base: u64,
    page_size: usize,
    pages: usize,
    views: usize,
}

impl Geometry {
    /// Creates a geometry with `views` application views over a memory
    /// object of `pages` pages of [`DEFAULT_PAGE_SIZE`] at [`DEFAULT_BASE`].
    ///
    /// # Panics
    ///
    /// Panics if `pages` or `views` is zero.
    pub fn new(pages: usize, views: usize) -> Self {
        Self::with_layout(DEFAULT_BASE, DEFAULT_PAGE_SIZE, pages, views)
    }

    /// Fully parameterized constructor.
    ///
    /// # Panics
    ///
    /// Panics if `pages`, `views` or `page_size` is zero, or if `page_size`
    /// is not a power of two.
    pub fn with_layout(base: u64, page_size: usize, pages: usize, views: usize) -> Self {
        assert!(pages > 0, "memory object needs at least one page");
        assert!(views > 0, "need at least one application view");
        assert!(
            page_size > 0 && page_size.is_power_of_two(),
            "page size must be a positive power of two"
        );
        Self {
            base,
            page_size,
            pages,
            views,
        }
    }

    /// Page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of physical pages in the memory object.
    #[inline]
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Number of application views (excluding the privileged view).
    #[inline]
    pub fn views(&self) -> usize {
        self.views
    }

    /// Index of the privileged view (one past the last application view).
    #[inline]
    pub fn priv_view(&self) -> usize {
        self.views
    }

    /// Total views including the privileged one.
    #[inline]
    pub fn total_views(&self) -> usize {
        self.views + 1
    }

    /// Bytes covered by one view (= memory object size).
    #[inline]
    pub fn view_span(&self) -> u64 {
        (self.pages * self.page_size) as u64
    }

    /// Total number of vpages across all views (including privileged).
    #[inline]
    pub fn total_vpages(&self) -> usize {
        self.total_views() * self.pages
    }

    /// The virtual address of (`view`, `page`, `offset`).
    ///
    /// # Panics
    ///
    /// Panics if any component is out of range.
    pub fn addr_of(&self, view: usize, page: usize, offset: usize) -> VAddr {
        assert!(view < self.total_views(), "view {view} out of range");
        assert!(page < self.pages, "page {page} out of range");
        assert!(offset < self.page_size, "offset {offset} out of range");
        VAddr(self.base + view as u64 * self.view_span() + (page * self.page_size + offset) as u64)
    }

    /// Decodes a virtual address, or `None` if it lies outside every view.
    pub fn decode(&self, addr: VAddr) -> Option<Loc> {
        let off = addr.0.checked_sub(self.base)?;
        let span = self.view_span();
        let view = (off / span) as usize;
        if view >= self.total_views() {
            return None;
        }
        let within = (off % span) as usize;
        Some(Loc {
            view,
            page: within / self.page_size,
            offset: within % self.page_size,
        })
    }

    /// Rebases `addr` into another view of the same memory (same page and
    /// offset, different view) — the `addr2priv` operation of Figure 3 when
    /// `view` is the privileged view.
    ///
    /// Returns `None` when `addr` is not a shared address.
    pub fn rebase(&self, addr: VAddr, view: usize) -> Option<VAddr> {
        let loc = self.decode(addr)?;
        Some(self.addr_of(view, loc.page, loc.offset))
    }

    /// `addr` translated to the privileged view (Figure 3's `addr2priv`).
    pub fn to_priv(&self, addr: VAddr) -> Option<VAddr> {
        self.rebase(addr, self.priv_view())
    }

    /// Global vpage index of (`view`, `page`): a dense index over all
    /// vpages of all views, used to store protections.
    #[inline]
    pub fn vpage_index(&self, view: usize, page: usize) -> usize {
        debug_assert!(view < self.total_views() && page < self.pages);
        view * self.pages + page
    }

    /// Global vpage index containing `addr`, or `None` if out of range.
    pub fn vpage_of(&self, addr: VAddr) -> Option<usize> {
        self.decode(addr).map(|l| self.vpage_index(l.view, l.page))
    }

    /// The global vpage indices covering `[addr, addr + len)`, along with
    /// the decoded start location. Returns `None` when the range starts
    /// outside the shared region, spills out of its view, or `len` is zero.
    pub fn vpages_covering(
        &self,
        addr: VAddr,
        len: usize,
    ) -> Option<(Loc, std::ops::Range<usize>)> {
        if len == 0 {
            return None;
        }
        let loc = self.decode(addr)?;
        let end_byte = loc.page * self.page_size + loc.offset + len - 1;
        let last_page = end_byte / self.page_size;
        if last_page >= self.pages {
            return None;
        }
        let first = self.vpage_index(loc.view, loc.page);
        let last = self.vpage_index(loc.view, last_page);
        Some((loc, first..last + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> Geometry {
        Geometry::with_layout(0x1000, 4096, 8, 3)
    }

    #[test]
    fn addr_roundtrips_through_decode() {
        let g = geo();
        for view in 0..g.total_views() {
            for page in [0usize, 3, 7] {
                for off in [0usize, 1, 4095] {
                    let a = g.addr_of(view, page, off);
                    assert_eq!(
                        g.decode(a),
                        Some(Loc {
                            view,
                            page,
                            offset: off
                        })
                    );
                }
            }
        }
    }

    #[test]
    fn decode_rejects_outside_addresses() {
        let g = geo();
        assert_eq!(g.decode(VAddr(0)), None);
        let beyond = g.addr_of(g.priv_view(), 7, 4095).add(1);
        assert_eq!(g.decode(beyond), None);
    }

    #[test]
    fn views_do_not_overlap() {
        let g = geo();
        let end_v0 = g.addr_of(0, 7, 4095);
        let start_v1 = g.addr_of(1, 0, 0);
        assert_eq!(end_v0.add(1), start_v1);
    }

    #[test]
    fn rebase_changes_only_the_view() {
        let g = geo();
        let a = g.addr_of(1, 5, 123);
        let b = g.rebase(a, 2).unwrap();
        assert_eq!(
            g.decode(b),
            Some(Loc {
                view: 2,
                page: 5,
                offset: 123
            })
        );
        let p = g.to_priv(a).unwrap();
        assert_eq!(
            g.decode(p),
            Some(Loc {
                view: g.priv_view(),
                page: 5,
                offset: 123
            })
        );
    }

    #[test]
    fn vpage_indices_are_dense_and_unique() {
        let g = geo();
        let mut seen = std::collections::HashSet::new();
        for view in 0..g.total_views() {
            for page in 0..g.pages() {
                assert!(seen.insert(g.vpage_index(view, page)));
            }
        }
        assert_eq!(seen.len(), g.total_vpages());
        assert_eq!(*seen.iter().max().unwrap(), g.total_vpages() - 1);
    }

    #[test]
    fn vpages_covering_spans_pages() {
        let g = geo();
        let a = g.addr_of(1, 2, 4000);
        // 200 bytes starting at offset 4000 cross into page 3.
        let (loc, range) = g.vpages_covering(a, 200).unwrap();
        assert_eq!(loc.page, 2);
        assert_eq!(range, g.vpage_index(1, 2)..g.vpage_index(1, 3) + 1);
        // Exactly one page.
        let (_, r1) = g.vpages_covering(a, 96).unwrap();
        assert_eq!(r1.len(), 1);
        // Zero length is rejected.
        assert!(g.vpages_covering(a, 0).is_none());
        // Spilling past the last page is rejected.
        let last = g.addr_of(0, 7, 4090);
        assert!(g.vpages_covering(last, 100).is_none());
    }

    #[test]
    #[should_panic(expected = "view")]
    fn addr_of_rejects_bad_view() {
        let g = geo();
        let _ = g.addr_of(4, 0, 0);
    }
}
