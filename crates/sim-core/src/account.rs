//! Per-category virtual-time accounting.
//!
//! Figure 6 (right) of the paper breaks the eight-host execution time of
//! each application into *Comp*, *Prefetch*, *Read Fault*, *Write Fault*
//! and *Synch*. Application threads in the reproduction attribute every
//! virtual nanosecond to one of these categories as it is charged, so the
//! breakdown is exact rather than sampled.

use crate::clock::Ns;
use serde::{Deserialize, Serialize};

/// Where a slice of virtual time was spent (Figure 6 categories).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Category {
    /// Application computation (including local memory access).
    Comp,
    /// Waiting for data that a prefetch had already requested.
    Prefetch,
    /// Blocked on a read access fault.
    ReadFault,
    /// Blocked on a write access fault.
    WriteFault,
    /// Barriers and locks.
    Synch,
}

impl Category {
    /// All categories in the order the paper's figure lists them.
    pub const ALL: [Category; 5] = [
        Category::Comp,
        Category::Prefetch,
        Category::ReadFault,
        Category::WriteFault,
        Category::Synch,
    ];

    /// Short label used by the `repro` harness output.
    pub fn label(self) -> &'static str {
        match self {
            Category::Comp => "Comp",
            Category::Prefetch => "Prefetch",
            Category::ReadFault => "Read Fault",
            Category::WriteFault => "Write Fault",
            Category::Synch => "Synch",
        }
    }
}

/// Accumulated virtual time per [`Category`].
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    totals: [Ns; 5],
}

impl TimeBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `dt` virtual nanoseconds to `cat`.
    #[inline]
    pub fn charge(&mut self, cat: Category, dt: Ns) {
        self.totals[Self::slot(cat)] += dt;
    }

    /// Time accumulated in `cat`.
    #[inline]
    pub fn get(&self, cat: Category) -> Ns {
        self.totals[Self::slot(cat)]
    }

    /// Sum over all categories.
    pub fn total(&self) -> Ns {
        self.totals.iter().sum()
    }

    /// Fraction of the total spent in `cat` (0 when the total is 0).
    pub fn fraction(&self, cat: Category) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(cat) as f64 / total as f64
        }
    }

    /// Element-wise sum with another breakdown (used to aggregate the
    /// per-thread breakdowns of one run).
    pub fn merge(&mut self, other: &TimeBreakdown) {
        for i in 0..self.totals.len() {
            self.totals[i] += other.totals[i];
        }
    }

    /// Element-wise saturating difference: the time accumulated since the
    /// `earlier` snapshot (used for timed regions).
    pub fn since(&self, earlier: &TimeBreakdown) -> TimeBreakdown {
        let mut out = TimeBreakdown::new();
        for i in 0..self.totals.len() {
            out.totals[i] = self.totals[i].saturating_sub(earlier.totals[i]);
        }
        out
    }

    fn slot(cat: Category) -> usize {
        match cat {
            Category::Comp => 0,
            Category::Prefetch => 1,
            Category::ReadFault => 2,
            Category::WriteFault => 3,
            Category::Synch => 4,
        }
    }
}

impl std::fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let total = self.total().max(1);
        let mut first = true;
        for cat in Category::ALL {
            if !first {
                write!(f, "  ")?;
            }
            first = false;
            write!(
                f,
                "{} {:.1}%",
                cat.label(),
                100.0 * self.get(cat) as f64 / total as f64
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_category() {
        let mut b = TimeBreakdown::new();
        b.charge(Category::Comp, 10);
        b.charge(Category::Comp, 5);
        b.charge(Category::Synch, 7);
        assert_eq!(b.get(Category::Comp), 15);
        assert_eq!(b.get(Category::Synch), 7);
        assert_eq!(b.get(Category::ReadFault), 0);
        assert_eq!(b.total(), 22);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut b = TimeBreakdown::new();
        for (i, cat) in Category::ALL.into_iter().enumerate() {
            b.charge(cat, (i as Ns + 1) * 100);
        }
        let sum: f64 = Category::ALL.iter().map(|&c| b.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        let b = TimeBreakdown::new();
        assert_eq!(b.fraction(Category::Comp), 0.0);
        assert_eq!(b.total(), 0);
    }

    #[test]
    fn since_subtracts_snapshots() {
        let mut b = TimeBreakdown::new();
        b.charge(Category::Comp, 100);
        let mark = b;
        b.charge(Category::Comp, 40);
        b.charge(Category::Synch, 7);
        let d = b.since(&mark);
        assert_eq!(d.get(Category::Comp), 40);
        assert_eq!(d.get(Category::Synch), 7);
        assert_eq!(mark.since(&b).total(), 0, "saturating");
    }

    #[test]
    fn merge_adds_elementwise() {
        let mut a = TimeBreakdown::new();
        a.charge(Category::Comp, 1);
        a.charge(Category::Prefetch, 2);
        let mut b = TimeBreakdown::new();
        b.charge(Category::Comp, 10);
        b.charge(Category::WriteFault, 4);
        a.merge(&b);
        assert_eq!(a.get(Category::Comp), 11);
        assert_eq!(a.get(Category::Prefetch), 2);
        assert_eq!(a.get(Category::WriteFault), 4);
    }

    #[test]
    fn display_mentions_every_label() {
        let mut b = TimeBreakdown::new();
        b.charge(Category::Comp, 50);
        b.charge(Category::Synch, 50);
        let s = b.to_string();
        for cat in Category::ALL {
            assert!(s.contains(cat.label()), "missing {:?} in {s}", cat);
        }
    }
}
