//! Counters, summaries and histograms used by the reproduction harnesses.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cheap shareable event counter.
///
/// Cloning a `Counter` yields a handle onto the same underlying count, so a
/// run can hand the same counter to many threads and read the total at the
/// end.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    inner: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn bump(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.inner.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }
}

/// Min/max/mean/standard-deviation summary of a stream of samples.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
    sum_sq: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            sum_sq: 0.0,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum += x;
        self.sum_sq += x * x;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Population standard deviation, or `None` if empty.
    pub fn stddev(&self) -> Option<f64> {
        self.mean().map(|m| {
            let var = (self.sum_sq / self.count as f64 - m * m).max(0.0);
            var.sqrt()
        })
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }
}

/// A fixed-bucket histogram over `u64` samples.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `bucket_width` each;
    /// samples at or beyond `buckets * bucket_width` land in an overflow
    /// bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` or `buckets` is zero.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0 && buckets > 0, "degenerate histogram");
        Self {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, x: u64) {
        let idx = (x / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Count in bucket `i` (i.e. samples in `i*w .. (i+1)*w`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate p-quantile (by bucket lower bound); `None` if empty.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = ((p.clamp(0.0, 1.0)) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Some(i as u64 * self.bucket_width);
            }
        }
        Some(self.buckets.len() as u64 * self.bucket_width)
    }
}

/// A log-bucketed (power-of-two) histogram over `u64` samples.
///
/// Bucket 0 holds exactly the sample `0`; bucket `i ≥ 1` holds
/// `[2^(i-1), 2^i)`. 65 buckets cover the whole `u64` range, so latencies
/// from nanoseconds to hours record without configuration and merging two
/// histograms is bucket-wise addition. Quantiles are approximate: the
/// reported value is the matched bucket's inclusive upper bound (clamped
/// to the true recorded maximum), i.e. at most 2× the true quantile —
/// the usual log-bucket trade for O(1) recording.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Number of buckets: one for zero plus one per power of two.
    pub const BUCKETS: usize = 65;

    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; Self::BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a sample lands in.
    #[inline]
    pub fn bucket_index(x: u64) -> usize {
        if x == 0 {
            0
        } else {
            64 - x.leading_zeros() as usize
        }
    }

    /// The smallest sample bucket `i` can hold.
    pub fn bucket_lower_bound(i: usize) -> u64 {
        assert!(i < Self::BUCKETS, "bucket index out of range");
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records a sample.
    #[inline]
    pub fn record(&mut self, x: u64) {
        self.buckets[Self::bucket_index(x)] += 1;
        self.total += 1;
        self.sum += x as u128;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Exact arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// Adds every sample of `other` into this histogram.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.total == 0 {
            return;
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Approximate p-quantile: the inclusive upper bound of the bucket
    /// holding the `ceil(p · count)`-th sample, clamped to the recorded
    /// maximum. `None` if empty.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = ((p.clamp(0.0, 1.0)) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = if i == 0 { 0 } else { (1u128 << i) - 1 };
                return Some((upper.min(self.max as u128)) as u64);
            }
        }
        Some(self.max)
    }

    /// Median (approximate; see [`quantile`](Self::quantile)).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th percentile (approximate).
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th percentile (approximate).
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_shared_between_clones() {
        let c = Counter::new();
        let c2 = c.clone();
        c.bump();
        c2.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn summary_basic_statistics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.mean(), Some(5.0));
        assert!((s.stddev().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_returns_none() {
        let s = Summary::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.stddev(), None);
    }

    #[test]
    fn summary_merge_equals_combined_stream() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut whole = Summary::new();
        for x in 0..10 {
            let v = x as f64 * 1.5;
            if x % 2 == 0 {
                a.add(v);
            } else {
                b.add(v);
            }
            whole.add(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.mean(), whole.mean());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10, 3);
        for x in [0, 5, 9, 10, 29, 30, 1000] {
            h.record(x);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.bucket(0), 3);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 1);
        assert_eq!(h.overflow(), 2);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(1, 100);
        for x in 0..100 {
            h.record(x);
        }
        assert_eq!(h.quantile(0.5), Some(49));
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(99));
        assert_eq!(Histogram::new(1, 1).quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "degenerate histogram")]
    fn zero_width_histogram_panics() {
        let _ = Histogram::new(0, 4);
    }

    #[test]
    fn log_histogram_bucket_boundaries() {
        // 0 is its own bucket; each power of two starts a new bucket.
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
        assert_eq!(LogHistogram::bucket_index(1023), 10);
        assert_eq!(LogHistogram::bucket_index(1024), 11);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), 64);
        for i in 0..LogHistogram::BUCKETS {
            let lo = LogHistogram::bucket_lower_bound(i);
            assert_eq!(LogHistogram::bucket_index(lo), i);
            if lo > 0 {
                assert_eq!(LogHistogram::bucket_index(lo - 1), i - 1);
            }
        }
    }

    #[test]
    fn log_histogram_counts_and_moments() {
        let mut h = LogHistogram::new();
        for x in [0u64, 1, 3, 3, 8, 1000] {
            h.record(x);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 2);
        assert_eq!(h.bucket(4), 1);
        assert_eq!(h.bucket(10), 1);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert!((h.mean().unwrap() - 1015.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_quantiles_bound_the_truth() {
        let mut h = LogHistogram::new();
        for x in 1..=1000u64 {
            h.record(x);
        }
        // Each reported quantile is >= the true one and < 2x it.
        for (p, truth) in [(0.5, 500u64), (0.95, 950), (0.99, 990)] {
            let q = h.quantile(p).unwrap();
            assert!(q >= truth, "p{p}: {q} < {truth}");
            assert!(q < truth * 2, "p{p}: {q} >= 2*{truth}");
        }
        // Extremes clamp to the recorded range.
        assert_eq!(h.quantile(1.0), Some(1000));
        assert_eq!(h.quantile(0.0).unwrap(), 1);
        // A constant stream reports the constant at every quantile.
        let mut c = LogHistogram::new();
        for _ in 0..10 {
            c.record(777);
        }
        assert_eq!(c.p50(), Some(777));
        assert_eq!(c.p99(), Some(777));
        assert_eq!(LogHistogram::new().p50(), None);
    }

    #[test]
    fn log_histogram_merge_equals_combined_stream() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for x in 0..200u64 {
            if x % 3 == 0 {
                a.record(x * 7);
            } else {
                b.record(x * 7);
            }
            whole.record(x * 7);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.mean(), whole.mean());
        for p in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(p), whole.quantile(p));
        }
    }
}
