//! A small deterministic PRNG.
//!
//! The simulation must be reproducible run-to-run for a fixed seed, so all
//! stochastic model components (timer jitter, workload generators) draw from
//! this SplitMix64 generator rather than from a global or entropy-seeded
//! source. SplitMix64 passes BigCrush, is trivially seedable, and every
//! stream is independent when seeded from distinct values.

/// SplitMix64 pseudo-random number generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds yield independent
    /// streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives an independent child generator (useful for giving each host
    /// its own stream from one run seed).
    pub fn fork(&mut self, salt: u64) -> Self {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::new(s)
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_range bound must be positive");
        // Multiply-shift bounded sampling (Lemire). The slight modulo bias
        // of the simple approach would be irrelevant for simulation, but
        // this is just as cheap.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `0..bound`.
    #[inline]
    pub fn next_usize(&mut self, bound: usize) -> usize {
        self.next_range(bound as u64) as usize
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_usize(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_range_stays_in_bounds() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            assert!(r.next_range(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_range_zero_bound_panics() {
        SplitMix64::new(1).next_range(0);
    }

    #[test]
    fn next_f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SplitMix64::new(77);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = SplitMix64::new(5);
        let mut child = parent.fork(1);
        let a = parent.next_u64();
        let b = child.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(11);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
