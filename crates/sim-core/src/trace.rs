//! Protocol event tracing: virtual-time-stamped records in per-thread
//! ring buffers.
//!
//! Every simulated thread (application thread, DSM server, manager shard)
//! owns a [`TraceRecorder`]: a private fixed-capacity ring it appends
//! [`TraceEvent`]s to with no synchronization at all. A disabled tracer
//! hands out inert recorders whose [`record`](TraceRecorder::record) is a
//! single branch on an `Option`, so the instrumentation stays in release
//! builds for free. When a recorder drops (its thread finished), the ring
//! drains into the shared [`Tracer`] sink; [`Tracer::drain`] then merges
//! all rings into one virtual-time-ordered log for export
//! ([`ChromeTrace`]) or replay auditing.
//!
//! Timestamps are **virtual** nanoseconds from the run's per-thread
//! clocks. The clocks are Lamport-merged at every message delivery and
//! rendezvous, so causally related events are correctly ordered, but two
//! *unrelated* events on different hosts may legitimately carry equal or
//! inverted stamps. The merge orders equal stamps by [`audit_rank`]
//! (completions before initiations) to keep the replay checker sound at
//! rendezvous instants.

use crate::clock::Ns;
use crate::HostId;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// "No minipage" marker for [`TraceEvent::mp`].
pub const NO_MP: u32 = u32::MAX;
/// "No peer host" marker for [`TraceEvent::peer`].
pub const NO_PEER: u16 = u16::MAX;

/// Which simulated thread of a host recorded an event.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Track {
    /// Application thread `t` of the host.
    App(u16),
    /// The DSM server thread (the poller/sweeper pair of §3.5.1).
    Server,
    /// The manager shard running inside the server thread.
    Shard,
}

/// What happened. The comments name the protocol step each kind marks;
/// `aux` encodes the kind-specific detail documented per variant.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TraceKind {
    /// Application thread enters the read-fault handler.
    ReadFaultBegin,
    /// Read fault serviced; the thread resumes.
    ReadFaultEnd,
    /// Application thread enters the write-fault handler.
    WriteFaultBegin,
    /// Write fault serviced; the thread resumes.
    WriteFaultEnd,
    /// A message left this host (`peer` = destination, `bytes` = payload).
    MsgSend,
    /// A message reached this host's server (`peer` = sender).
    MsgRecv,
    /// A shard opened a minipage's service window.
    WindowOpen,
    /// A shard closed a minipage's service window.
    WindowClose,
    /// A shard queued a competing request (window already open).
    ReqQueued,
    /// A shard forwarded a request to a copy holder (`peer` = holder,
    /// `aux` = 0 read / 1 write).
    Forward,
    /// A copy holder served a minipage out of its privileged view
    /// (`peer` = requester, `aux` = 0 read / 1 write).
    Serve,
    /// A host installed received minipage data (`aux` = 1 read-only /
    /// 2 writable).
    Install,
    /// A host downgraded its writable copy to read-only.
    Downgrade,
    /// A host dropped its copy (invalidation or release flush; `aux` = 1
    /// when the drop answers a received `InvalidateRequest`, 0 for a
    /// serving-side or release-flush drop).
    InvalidateLocal,
    /// A shard fanned an invalidation out to `peer`.
    InvSend,
    /// A shard received an invalidation confirmation from `peer`.
    InvReplyRecv,
    /// The post-access ack closed a service window's covering fault.
    AckRecv,
    /// A release flush shipped a diff to the home (`aux` = 1 when the
    /// flusher blocks for an ack, 0 fire-and-forget).
    RcDiffSend,
    /// The home applied a release diff (`bytes` = encoded diff size).
    RcDiffApply,
    /// The home acknowledged a flushed diff to `peer`.
    RcDiffAckSend,
    /// A flusher's pending diff was acknowledged.
    RcDiffAckRecv,
    /// An application thread entered the barrier.
    BarrierEnter,
    /// The manager released the barrier towards `peer`.
    BarrierReleaseSend,
    /// An application thread resumed from the barrier.
    BarrierResume,
    /// An application thread requested lock `event`.
    LockAcquireBegin,
    /// The manager granted lock `event` to `peer`.
    LockGrantSend,
    /// An application thread resumed holding lock `event`.
    LockResume,
    /// An application thread released lock `event`.
    LockRelease,
    /// Allocation-time directory state: the minipage starts at its home
    /// (`aux` = 1 writable under SW/MR, 0 read-only under HLRC).
    AllocGrant,
    /// The fault plane dropped a transmission on the wire (`peer` =
    /// destination, `aux` = consecutive losses of this packet so far).
    PktDropped,
    /// The reliable channel retransmitted after a virtual-time RTO
    /// (`peer` = destination, `aux` = retry number, 1-based).
    Retransmit,
    /// The receive-side dedup buffer suppressed a duplicate delivery
    /// (`peer` = sender, `aux` = duplicated wire sequence number).
    DupSuppressed,
    /// A request outlived its retransmit budget (or wall-clock backstop)
    /// and surfaced as a `ProtocolError::Timeout` (`peer` = destination).
    TimeoutFired,
    /// The server timeline clamped a negative queue delay — a
    /// virtual-clock inversion the `saturating_sub` would otherwise hide
    /// (`aux` = clamped magnitude in ns, saturated to `u32::MAX`).
    DelayClamped,
    /// The adaptation engine split minipage `mp` (`aux` = number of
    /// children; each child follows as its own `AllocGrant`). The retired
    /// minipage's window must be closed and its copies dropped.
    AdaptSplit,
    /// The adaptation engine merged minipage `mp` into a successor
    /// (`event` = successor id; the merged entry follows as `AllocGrant`).
    AdaptMerge,
    /// The adaptation engine migrated minipage `mp`'s home to `peer`
    /// (`aux` = 1 when the new home holds the copy writable, 0
    /// read-only).
    AdaptMigrate,
    /// A stale home forwarded a request for `mp` to the current home
    /// `peer` (`event` = the forwarded rendezvous id, `aux` = home-map
    /// epoch at forward time). Each rendezvous is forwarded at most once.
    AdaptForward,
}

/// One virtual-time-stamped protocol event.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual timestamp (ns) on the recording thread's clock.
    pub vt: Ns,
    /// Global record-order sequence number, stamped when the event is
    /// recorded. The simulation processes a message only after it was
    /// sent (channel delivery), so record order is a causally-consistent
    /// linearization even where optimistic virtual timestamps invert;
    /// the replay auditor uses it instead of `vt`.
    pub seq: u64,
    /// Host that recorded the event.
    pub host: u16,
    /// Which of the host's threads recorded it.
    pub track: Track,
    /// What happened.
    pub kind: TraceKind,
    /// Minipage id, or [`NO_MP`].
    pub mp: u32,
    /// Peer host (message/invalidation counterpart), or [`NO_PEER`].
    pub peer: u16,
    /// Protocol event id (rendezvous), lock id, or 0.
    pub event: u64,
    /// Payload bytes for wire events, 0 otherwise.
    pub bytes: u32,
    /// Kind-specific detail; see the [`TraceKind`] variants.
    pub aux: u32,
}

impl TraceEvent {
    /// A bare event; detail fields start at their "none" markers.
    pub fn new(vt: Ns, host: HostId, track: Track, kind: TraceKind) -> Self {
        Self {
            vt,
            seq: 0,
            host: host.0,
            track,
            kind,
            mp: NO_MP,
            peer: NO_PEER,
            event: 0,
            bytes: 0,
            aux: 0,
        }
    }

    /// Sets the minipage id.
    pub fn with_mp(mut self, mp: u32) -> Self {
        self.mp = mp;
        self
    }

    /// Sets the peer host.
    pub fn with_peer(mut self, peer: HostId) -> Self {
        self.peer = peer.0;
        self
    }

    /// Sets the protocol event / lock id.
    pub fn with_event(mut self, event: u64) -> Self {
        self.event = event;
        self
    }

    /// Sets the payload size.
    pub fn with_bytes(mut self, bytes: usize) -> Self {
        self.bytes = bytes as u32;
        self
    }

    /// Sets the kind-specific detail.
    pub fn with_aux(mut self, aux: u32) -> Self {
        self.aux = aux;
        self
    }
}

/// Merge order of events sharing a virtual timestamp: state-releasing
/// events (window closes, invalidation confirmations, acks, fault ends)
/// sort before state-acquiring ones, so a replay never sees e.g. the
/// reopening of a service window before the close that freed it when both
/// carry the same stamp (the shard performs them back to back at one
/// virtual instant).
pub fn audit_rank(kind: TraceKind) -> u8 {
    use TraceKind::*;
    match kind {
        AllocGrant | AdaptSplit | AdaptMerge | AdaptMigrate => 0,
        WindowClose | Downgrade | InvalidateLocal | InvReplyRecv | AckRecv | RcDiffAckSend
        | RcDiffAckRecv | BarrierReleaseSend | LockRelease | ReadFaultEnd | WriteFaultEnd
        | MsgRecv => 1,
        _ => 2,
    }
}

struct Sink {
    capacity: usize,
    rings: Mutex<Vec<Vec<TraceEvent>>>,
    /// Per-host overwrite tallies (hosts with no drops absent).
    dropped: Mutex<std::collections::BTreeMap<u16, u64>>,
    /// Global record-order stamp ([`TraceEvent::seq`]).
    seq: AtomicU64,
}

/// The run-wide trace handle: hands out per-thread recorders and merges
/// their rings at the end. Cloning shares the sink. The default tracer is
/// disabled: recorders are inert and recording costs one branch.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<Sink>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.sink {
            Some(s) => write!(f, "Tracer(enabled, capacity {})", s.capacity),
            None => write!(f, "Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// A disabled tracer (the default): recording is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled tracer whose recorders each keep the most recent
    /// `capacity` events (older ones are overwritten and counted as
    /// dropped).
    pub fn enabled(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity tracer");
        Self {
            sink: Some(Arc::new(Sink {
                capacity,
                rings: Mutex::new(Vec::new()),
                dropped: Mutex::new(std::collections::BTreeMap::new()),
                seq: AtomicU64::new(0),
            })),
        }
    }

    /// Whether recorders from this tracer record anything.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// A recorder for one simulated thread.
    pub fn recorder(&self, host: HostId, track: Track) -> TraceRecorder {
        TraceRecorder {
            inner: self.sink.as_ref().map(|s| {
                Box::new(Ring {
                    host,
                    track,
                    buf: Vec::with_capacity(s.capacity.min(1024)),
                    next: 0,
                    dropped: 0,
                    sink: Arc::clone(s),
                })
            }),
        }
    }

    /// Per-host counts of events overwritten in full rings, flushed so
    /// far (hosts with no drops omitted). Unlike [`drain`](Self::drain)
    /// this does not consume the rings, so report assembly can surface
    /// drop counts while the caller still owns the eventual drain.
    pub fn dropped_by_host(&self) -> Vec<(u16, u64)> {
        let Some(s) = &self.sink else {
            return Vec::new();
        };
        s.dropped
            .lock()
            .expect("trace sink poisoned")
            .iter()
            .map(|(&h, &n)| (h, n))
            .collect()
    }

    /// Merges every flushed ring into one log ordered by
    /// `(vt, audit_rank)`. Call after the recording threads finished
    /// (dropped their recorders); rings still alive are not included.
    pub fn drain(&self) -> TraceLog {
        let Some(s) = &self.sink else {
            return TraceLog::default();
        };
        let rings = std::mem::take(&mut *s.rings.lock().expect("trace sink poisoned"));
        let dropped_by_host = self.dropped_by_host();
        let dropped = dropped_by_host.iter().map(|&(_, n)| n).sum();
        let mut events: Vec<TraceEvent> = rings.into_iter().flatten().collect();
        // The final `seq` tie-break makes the merged order independent of
        // ring flush order (recorders are flushed at drop, and drop order
        // races even under the deterministic scheduler).
        events.sort_by_key(|e| (e.vt, audit_rank(e.kind), e.host, e.seq));
        TraceLog {
            events,
            dropped,
            dropped_by_host,
        }
    }
}

/// The merged outcome of a traced run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TraceLog {
    /// All recorded events in `(vt, audit_rank)` order.
    pub events: Vec<TraceEvent>,
    /// Events overwritten in full rings (0 means the log is complete).
    pub dropped: u64,
    /// The same drops attributed per host (hosts with no drops omitted).
    pub dropped_by_host: Vec<(u16, u64)>,
}

impl TraceLog {
    /// The events in global record order ([`TraceEvent::seq`]): the
    /// causally-consistent replay order the invariant auditor uses
    /// (virtual timestamps can legitimately invert across hosts; record
    /// order cannot, because a message is only processed after it was
    /// sent).
    pub fn causal_order(&self) -> Vec<TraceEvent> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|e| e.seq);
        evs
    }
}

struct Ring {
    host: HostId,
    track: Track,
    buf: Vec<TraceEvent>,
    /// Overwrite cursor once `buf` reached the sink capacity.
    next: usize,
    dropped: u64,
    sink: Arc<Sink>,
}

/// One thread's private event ring. Dropping it flushes into the tracer.
#[derive(Default)]
pub struct TraceRecorder {
    inner: Option<Box<Ring>>,
}

impl TraceRecorder {
    /// An inert recorder (what a disabled tracer hands out).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether events are recorded; callers use this to skip building
    /// events at all, so the disabled cost is this one branch.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Appends an event; overwrites the oldest when the ring is full.
    #[inline]
    pub fn record(&mut self, mut ev: TraceEvent) {
        let Some(r) = &mut self.inner else { return };
        ev.seq = r.sink.seq.fetch_add(1, Ordering::Relaxed);
        if r.buf.len() < r.sink.capacity {
            r.buf.push(ev);
        } else {
            r.buf[r.next] = ev;
            r.next = (r.next + 1) % r.buf.len();
            r.dropped += 1;
        }
    }

    /// Builds and records an event in one call when enabled.
    #[inline]
    pub fn emit(&mut self, vt: Ns, kind: TraceKind, build: impl FnOnce(TraceEvent) -> TraceEvent) {
        let Some(r) = &self.inner else { return };
        let ev = TraceEvent::new(vt, r.host, r.track, kind);
        self.record(build(ev));
    }
}

impl Drop for TraceRecorder {
    fn drop(&mut self) {
        let Some(mut r) = self.inner.take() else {
            return;
        };
        // Restore chronological order for a wrapped ring: the slots from
        // the cursor on are the oldest surviving events.
        if r.dropped > 0 {
            r.buf.rotate_left(r.next);
        }
        let sink = Arc::clone(&r.sink);
        sink.rings.lock().expect("trace sink poisoned").push(r.buf);
        if r.dropped > 0 {
            *sink
                .dropped
                .lock()
                .expect("trace sink poisoned")
                .entry(r.host.0)
                .or_insert(0) += r.dropped;
        }
    }
}

// ---------------------------------------------------------------------
// Chrome trace-event export (Perfetto / chrome://tracing).
// ---------------------------------------------------------------------

/// Builds the Chrome trace-event JSON (the "JSON Array Format" both
/// Perfetto and `chrome://tracing` open). Each simulated host becomes a
/// process, each of its threads ([`Track`]) a named track; paired events
/// (fault begin/end, window open/close, barrier enter/resume, lock
/// acquire/resume) render as duration slices, everything else as instants.
/// Timestamps convert from virtual nanoseconds to the format's
/// microseconds with 3 decimals, so nothing is lost.
#[derive(Default)]
pub struct ChromeTrace {
    body: String,
    named: std::collections::HashSet<(u32, u32)>,
    /// Name tracks after the host backend's OS threads (`mv-host-{h}`,
    /// `mv-server-{h}`) instead of the classic labels, so sim and host
    /// traces of the same workload render identically.
    os_names: bool,
}

/// A `(host, track)`-keyed open-slice stack entry.
struct Open {
    name: &'static str,
    begin: Ns,
    mp: u32,
    event: u64,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty trace whose tracks carry the host backend's OS thread
    /// names (`mv-host-{h}.{t}` for application threads, `mv-server-{h}`
    /// for the DSM server, `mv-shard-{h}` for the manager shard), so a
    /// sim trace and a host trace of the same workload render with the
    /// same track names in Perfetto.
    pub fn with_os_names() -> Self {
        Self {
            os_names: true,
            ..Self::default()
        }
    }

    fn tid(track: Track) -> u32 {
        match track {
            Track::App(t) => t as u32,
            Track::Server => 1000,
            Track::Shard => 1001,
        }
    }

    fn push(&mut self, obj: &str) {
        if !self.body.is_empty() {
            self.body.push_str(",\n");
        }
        self.body.push_str(obj);
    }

    fn ensure_names(&mut self, label: &str, pid: u32, host: u16, track: Track) {
        if self.named.insert((pid, u32::MAX)) {
            self.push(&format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{} h{host}\"}}}}",
                esc(label)
            ));
        }
        let tid = Self::tid(track);
        if self.named.insert((pid, tid)) {
            let tname = if self.os_names {
                match track {
                    Track::App(t) => format!("mv-host-{host}.{t}"),
                    Track::Server => format!("mv-server-{host}"),
                    Track::Shard => format!("mv-shard-{host}"),
                }
            } else {
                match track {
                    Track::App(t) => format!("app t{t}"),
                    Track::Server => "dsm server".into(),
                    Track::Shard => "manager shard".into(),
                }
            };
            self.push(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{tname}\"}}}}"
            ));
        }
    }

    /// Appends one run's events. `label` names the run (e.g. the app);
    /// `pid_base` offsets the host→pid mapping so several runs coexist in
    /// one file without colliding.
    pub fn add_run(&mut self, label: &str, pid_base: u32, events: &[TraceEvent]) {
        use TraceKind::*;
        let mut open: std::collections::HashMap<(u16, u32), Vec<Open>> =
            std::collections::HashMap::new();
        for e in events {
            let pid = pid_base + e.host as u32;
            let tid = Self::tid(e.track);
            self.ensure_names(label, pid, e.host, e.track);
            let begin_name = match e.kind {
                ReadFaultBegin => Some("read fault"),
                WriteFaultBegin => Some("write fault"),
                WindowOpen => Some("service window"),
                BarrierEnter => Some("barrier"),
                LockAcquireBegin => Some("lock wait"),
                _ => None,
            };
            if let Some(name) = begin_name {
                open.entry((e.host, tid)).or_default().push(Open {
                    name,
                    begin: e.vt,
                    mp: e.mp,
                    event: e.event,
                });
                continue;
            }
            let closes = matches!(
                e.kind,
                ReadFaultEnd | WriteFaultEnd | WindowClose | BarrierResume | LockResume
            );
            if closes {
                if let Some(o) = open.entry((e.host, tid)).or_default().pop() {
                    self.push(&slice(&o, e.vt, pid, tid));
                }
                continue;
            }
            self.push(&instant(e, pid, tid));
        }
        // Unpaired begins (e.g. a window still open at a dropped-ring
        // boundary) close at their own start so they stay visible.
        for ((host, tid), stack) in open {
            let pid = pid_base + host as u32;
            for o in stack {
                self.push(&slice(&o, o.begin, pid, tid));
            }
        }
    }

    /// Appends a counter track (`ph:"C"`): one sample per `(vt, value)`
    /// point, rendered by Perfetto as a stepped area chart under process
    /// `pid`. Used for the diagnose command's per-host cumulative-fault
    /// counters.
    pub fn add_counter(&mut self, name: &str, pid: u32, points: &[(Ns, u64)]) {
        for &(vt, value) in points {
            self.push(&format!(
                "{{\"name\":\"{}\",\"cat\":\"diag\",\"ph\":\"C\",\"ts\":{},\"pid\":{pid},\
                 \"args\":{{\"value\":{value}}}}}",
                esc(name),
                us3(vt),
            ));
        }
    }

    /// The complete JSON document.
    pub fn finish(self) -> String {
        format!(
            "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n",
            self.body
        )
    }
}

/// µs with 3 decimals from virtual ns (exact).
fn us3(vt: Ns) -> String {
    format!("{}.{:03}", vt / 1_000, vt % 1_000)
}

fn slice(o: &Open, end: Ns, pid: u32, tid: u32) -> String {
    let mut args = String::new();
    if o.mp != NO_MP {
        args.push_str(&format!("\"mp\":{}", o.mp));
    }
    if o.event != 0 {
        if !args.is_empty() {
            args.push(',');
        }
        args.push_str(&format!("\"event\":{}", o.event));
    }
    format!(
        "{{\"name\":\"{}\",\"cat\":\"protocol\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
         \"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}",
        o.name,
        us3(o.begin),
        us3(end.saturating_sub(o.begin)),
    )
}

fn instant(e: &TraceEvent, pid: u32, tid: u32) -> String {
    let mut args = String::new();
    if e.mp != NO_MP {
        args.push_str(&format!("\"mp\":{}", e.mp));
    }
    if e.peer != NO_PEER {
        if !args.is_empty() {
            args.push(',');
        }
        args.push_str(&format!("\"peer\":{}", e.peer));
    }
    if e.bytes != 0 {
        if !args.is_empty() {
            args.push(',');
        }
        args.push_str(&format!("\"bytes\":{}", e.bytes));
    }
    if e.event != 0 {
        if !args.is_empty() {
            args.push(',');
        }
        args.push_str(&format!("\"event\":{}", e.event));
    }
    format!(
        "{{\"name\":\"{:?}\",\"cat\":\"protocol\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
         \"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}",
        e.kind,
        us3(e.vt),
    )
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(vt: Ns, kind: TraceKind) -> TraceEvent {
        TraceEvent::new(vt, HostId(0), Track::App(0), kind)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        let mut r = t.recorder(HostId(0), Track::App(0));
        assert!(!r.enabled());
        r.record(ev(1, TraceKind::MsgSend));
        drop(r);
        let log = t.drain();
        assert!(log.events.is_empty());
        assert_eq!(log.dropped, 0);
    }

    #[test]
    fn events_flush_on_drop_and_merge_by_time() {
        let t = Tracer::enabled(64);
        let mut a = t.recorder(HostId(0), Track::App(0));
        let mut b = t.recorder(HostId(1), Track::Server);
        a.record(ev(30, TraceKind::MsgSend));
        a.record(ev(10, TraceKind::MsgSend));
        b.record(TraceEvent::new(
            20,
            HostId(1),
            Track::Server,
            TraceKind::MsgRecv,
        ));
        drop(a);
        drop(b);
        let log = t.drain();
        let vts: Vec<Ns> = log.events.iter().map(|e| e.vt).collect();
        assert_eq!(vts, vec![10, 20, 30]);
        assert_eq!(log.dropped, 0);
    }

    #[test]
    fn ring_wraparound_keeps_newest_in_order() {
        let t = Tracer::enabled(4);
        let mut r = t.recorder(HostId(2), Track::Shard);
        for vt in 1..=7 {
            r.record(TraceEvent::new(
                vt,
                HostId(2),
                Track::Shard,
                TraceKind::MsgSend,
            ));
        }
        drop(r);
        assert_eq!(t.dropped_by_host(), vec![(2, 3)]);
        let log = t.drain();
        let vts: Vec<Ns> = log.events.iter().map(|e| e.vt).collect();
        assert_eq!(vts, vec![4, 5, 6, 7]);
        assert_eq!(log.dropped, 3);
        assert_eq!(log.dropped_by_host, vec![(2, 3)]);
    }

    #[test]
    fn hosts_without_drops_are_omitted() {
        let t = Tracer::enabled(4);
        let mut full = t.recorder(HostId(0), Track::App(0));
        let mut quiet = t.recorder(HostId(1), Track::App(0));
        for vt in 1..=6 {
            full.record(ev(vt, TraceKind::MsgSend));
        }
        quiet.record(TraceEvent::new(
            1,
            HostId(1),
            Track::App(0),
            TraceKind::MsgSend,
        ));
        drop(full);
        drop(quiet);
        assert_eq!(t.drain().dropped_by_host, vec![(0, 2)]);
    }

    #[test]
    fn os_names_rename_tracks_and_counters_emit() {
        let mut ct = ChromeTrace::with_os_names();
        ct.add_run(
            "SOR",
            0,
            &[
                ev(1_000, TraceKind::ReadFaultBegin).with_mp(3),
                TraceEvent::new(2_000, HostId(0), Track::Server, TraceKind::MsgRecv),
            ],
        );
        ct.add_counter("faults h0", 0, &[(1_000, 1), (2_000, 2)]);
        let json = ct.finish();
        assert!(json.contains("mv-host-0.0"));
        assert!(json.contains("mv-server-0"));
        assert!(!json.contains("dsm server"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"value\":2"));
    }

    #[test]
    fn equal_stamps_order_completions_first() {
        let t = Tracer::enabled(16);
        let mut r = t.recorder(HostId(0), Track::Shard);
        r.record(ev(5, TraceKind::WindowOpen).with_mp(1));
        r.record(ev(9, TraceKind::WindowClose).with_mp(1));
        // Reopened at the same instant the close happened; recorded in
        // order here, but the merge must keep close-before-open even if
        // another ring interleaves.
        let mut r2 = t.recorder(HostId(0), Track::Server);
        r2.record(TraceEvent::new(9, HostId(0), Track::Server, TraceKind::WindowOpen).with_mp(1));
        drop(r);
        drop(r2);
        let log = t.drain();
        let kinds: Vec<TraceKind> = log.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::WindowOpen,
                TraceKind::WindowClose,
                TraceKind::WindowOpen
            ]
        );
    }

    #[test]
    fn chrome_export_pairs_slices_and_escapes() {
        let mut ct = ChromeTrace::new();
        ct.add_run(
            "SOR \"quick\"",
            0,
            &[
                ev(1_000, TraceKind::ReadFaultBegin).with_mp(3),
                ev(2_500, TraceKind::MsgSend)
                    .with_peer(HostId(1))
                    .with_bytes(64),
                ev(4_000, TraceKind::ReadFaultEnd).with_mp(3),
            ],
        );
        let json = ct.finish();
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":3.000"));
        assert!(json.contains("\\\"quick\\\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn esc_handles_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
