//! Virtual-time kernel for the Millipage reproduction.
//!
//! The reproduction runs the Millipage protocol for real (real threads, real
//! blocking, real data movement between simulated hosts) but accounts *time*
//! virtually: every simulated thread owns a nanosecond [`Clock`], application
//! work and protocol steps charge costs from a [`CostModel`], and messages
//! carry virtual send timestamps so that latency-derived results (speedups,
//! breakdowns) reproduce the shape of the paper's measurements.
//!
//! This crate holds the pieces shared by every other crate in the workspace:
//!
//! * [`addr`] — virtual addresses and the shared MultiView geometry (the
//!   vocabulary every backend, simulated or real, speaks),
//! * [`clock`] — virtual clocks and time algebra,
//! * [`cost`] — the calibrated cost model (Table 1 and §3.5 of the paper),
//! * [`rng`] — a small deterministic PRNG (SplitMix64),
//! * [`account`] — per-category time accounting (the Figure 6 breakdown),
//! * [`stats`] — counters, summaries, and histograms used by the harnesses,
//! * [`trace`] — virtual-time protocol event tracing (per-thread rings,
//!   Chrome-trace export),
//! * [`sched`] — the cooperative deterministic scheduler (one seed, one
//!   interleaving) backing schedule exploration.

pub mod account;
pub mod addr;
pub mod clock;
pub mod cost;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod trace;

pub use account::{Category, TimeBreakdown};
pub use addr::{Geometry, Loc, VAddr, DEFAULT_BASE, DEFAULT_PAGE_SIZE};
pub use clock::{BusyWindow, Clock, Ns, SharedClock};
pub use cost::{CostModel, ServiceDelayModel};
pub use rng::SplitMix64;
pub use sched::{
    BlockOutcome, DeliveryGate, ParallelConfig, SchedMode, SchedPolicy, SchedThread, Scheduler,
    ThreadClass, ThreadKey,
};
pub use stats::{Counter, Histogram, LogHistogram, Summary};
pub use trace::{ChromeTrace, TraceEvent, TraceKind, TraceLog, TraceRecorder, Tracer, Track};

/// Identifier of a simulated host (0-based, dense).
///
/// The paper's testbed has eight hosts; the reproduction supports up to 64
/// (copysets are stored as `u64` bitmasks).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct HostId(pub u16);

impl HostId {
    /// Maximum number of hosts supported by the copyset bitmask encoding.
    pub const MAX_HOSTS: usize = 64;

    /// Returns the host id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_id_roundtrip_and_display() {
        let h = HostId(7);
        assert_eq!(h.index(), 7);
        assert_eq!(h.to_string(), "h7");
        assert!(HostId(3) < HostId(4));
    }
}
