//! SOR — red/black successive over-relaxation (TreadMarks suite).
//!
//! The matrix is allocated **row by row**; §4.3: "There was no need to
//! modify SOR, as it uses a matrix which is allocated row by row. The
//! granularity of a row is suitable as the sharing unit." With the paper's
//! 64-column `f32` rows each row is a 256-byte minipage (Table 2), so the
//! band-partitioned solver only communicates its two boundary rows per
//! phase and false sharing is absent.

use crate::{band, cal, AppRun, TimedAgg};
use millipage::{run, ClusterConfig, Dsm, SetupCtx, SharedVec};

/// SOR workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct SorParams {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns (row bytes = 4·cols).
    pub cols: usize,
    /// Red/black iterations (each is two phases + two barriers).
    pub iters: usize,
}

impl SorParams {
    /// The paper's input set: 32768×64, 8 MB shared, 10 iterations
    /// (Table 2 reports 21 barriers: 2 per iteration plus the final one).
    pub fn paper() -> Self {
        Self {
            rows: 32768,
            cols: 64,
            iters: 10,
        }
    }

    /// A test-sized instance.
    pub fn small() -> Self {
        Self {
            rows: 64,
            cols: 16,
            iters: 4,
        }
    }

    /// Shared bytes.
    pub fn shared_bytes(&self) -> usize {
        self.rows * self.cols * 4
    }
}

/// Deterministic initial value of element `(i, j)`: hot left edge, cold
/// interior.
fn initial(i: usize, j: usize, cols: usize) -> f32 {
    if j == 0 {
        1.0 + (i % 7) as f32 * 0.125
    } else if j == cols - 1 {
        -1.0
    } else {
        0.0
    }
}

/// One red/black phase over `rows_of_parity` on plain storage (the
/// sequential reference kernel; the parallel version runs the same
/// arithmetic in the same order per row).
fn relax_row(above: &[f32], row: &mut [f32], below: &[f32]) {
    let cols = row.len();
    for j in 1..cols - 1 {
        row[j] = 0.25 * (above[j] + below[j] + row[j - 1] + row[j + 1]);
    }
}

/// Sequential reference: returns the checksum (sum of all elements).
pub fn reference(p: SorParams) -> f64 {
    let mut m: Vec<Vec<f32>> = (0..p.rows)
        .map(|i| (0..p.cols).map(|j| initial(i, j, p.cols)).collect())
        .collect();
    for _ in 0..p.iters {
        for parity in [0usize, 1] {
            for i in 1..p.rows - 1 {
                if i % 2 == parity {
                    let (a, rest) = m.split_at_mut(i);
                    let (r, b) = rest.split_at_mut(1);
                    relax_row(&a[i - 1], &mut r[0], &b[0]);
                }
            }
        }
    }
    m.iter().flatten().map(|&x| x as f64).sum()
}

/// Handles shared by all hosts: one `SharedVec` per matrix row.
pub struct SorShared {
    rows: Vec<SharedVec<f32>>,
    params: SorParams,
}

/// Allocates the matrix row by row (values are written by the workers'
/// parallel initialization, which also claims row ownership).
pub fn setup(setup: &mut SetupCtx, p: SorParams) -> SorShared {
    let rows = (0..p.rows).map(|_| setup.alloc_vec(p.cols)).collect();
    SorShared { rows, params: p }
}

/// The per-host program, portable across backends: written against the
/// [`Dsm`] trait, it runs identically on the simulator's `HostCtx` and on
/// the real-memory backend's `HostDsmCtx`.
pub fn worker<D: Dsm>(ctx: &mut D, sh: &SorShared) {
    let p = sh.params;
    let hosts = ctx.hosts();
    let my = band(p.rows, hosts, ctx.host().index());
    // Parallel initialization: each host writes (and thereby owns) its
    // band, like the original benchmark; the timed region starts after.
    for i in my.clone() {
        let init: Vec<f32> = (0..p.cols).map(|j| initial(i, j, p.cols)).collect();
        ctx.write_range(&sh.rows[i], 0, &init);
    }
    ctx.barrier();
    ctx.timer_reset();
    for _ in 0..p.iters {
        for parity in [0usize, 1] {
            for i in my.clone() {
                if i % 2 != parity || i == 0 || i == p.rows - 1 {
                    continue;
                }
                // Boundary rows of neighbouring bands arrive by read fault;
                // interior neighbours are local after the first iteration.
                let above = ctx.read_range(&sh.rows[i - 1], 0..p.cols);
                let below = ctx.read_range(&sh.rows[i + 1], 0..p.cols);
                let mut row = ctx.read_range(&sh.rows[i], 0..p.cols);
                relax_row(&above, &mut row, &below);
                ctx.compute(cal::SOR_ELEM_NS * (p.cols as u64 - 2));
                ctx.write_range(&sh.rows[i], 0, &row);
            }
            ctx.barrier();
        }
    }
    ctx.barrier();
}

/// Checksum as computed by host 0 after the final barrier.
pub fn checksum<D: Dsm>(ctx: &mut D, sh: &SorShared) -> f64 {
    let p = sh.params;
    let mut sum = 0.0f64;
    for row in &sh.rows {
        for v in ctx.read_range(row, 0..p.cols) {
            sum += v as f64;
        }
    }
    sum
}

/// Runs SOR on a cluster configured by `cfg`.
pub fn run_sor(mut cfg: ClusterConfig, p: SorParams) -> AppRun {
    cfg.pages = cfg.pages.max(p.shared_bytes() / 4096 * 2 + 64);
    cfg.views = cfg.views.max((4096 / (p.cols * 4)).clamp(1, 32));
    let sum = parking_lot::Mutex::new(0.0f64);
    let timed = TimedAgg::new();
    let report = run(
        cfg,
        |s| setup(s, p),
        |ctx, sh| {
            worker(ctx, sh);
            timed.record(ctx);
            if ctx.host().index() == 0 {
                *sum.lock() = checksum(ctx, sh);
            }
        },
    );
    let (timed_ns, timed_breakdown) = timed.take();
    AppRun {
        report,
        checksum: sum.into_inner(),
        timed_ns,
        timed_breakdown,
    }
}

/// Runs SOR on the real-memory backend (Linux): same workers, same
/// checksum, real SIGSEGV faults. The geometry mirrors [`run_sor`]'s
/// sizing with the real page size.
#[cfg(target_os = "linux")]
pub fn run_sor_host(hosts: usize, p: SorParams) -> Result<crate::HostAppRun, String> {
    run_sor_host_cfg(hosts, p, false)
}

/// [`run_sor_host`] with per-minipage sharing diagnostics recorded (the
/// counters `repro diagnose --backend host` cross-checks against the sim).
#[cfg(target_os = "linux")]
pub fn run_sor_host_diag(hosts: usize, p: SorParams) -> Result<crate::HostAppRun, String> {
    run_sor_host_cfg(hosts, p, true)
}

/// [`run_sor_host_diag`] with the online adaptation engine armed (the
/// run `repro adapt --backend host` compares against the sim's actions).
#[cfg(target_os = "linux")]
pub fn run_sor_host_adapt(
    hosts: usize,
    p: SorParams,
    adapt: millipage::AdaptConfig,
) -> Result<crate::HostAppRun, String> {
    run_sor_host_full(hosts, p, true, adapt)
}

#[cfg(target_os = "linux")]
fn run_sor_host_cfg(hosts: usize, p: SorParams, diag: bool) -> Result<crate::HostAppRun, String> {
    run_sor_host_full(hosts, p, diag, millipage::AdaptConfig::default())
}

#[cfg(target_os = "linux")]
fn run_sor_host_full(
    hosts: usize,
    p: SorParams,
    diag: bool,
    adapt: millipage::AdaptConfig,
) -> Result<crate::HostAppRun, String> {
    let page_size = 4096; // MultiViewRegion uses the system page size.
    let pages = p.shared_bytes() / page_size * 2 + 64;
    let views = (page_size / (p.cols * 4)).clamp(1, 32);
    let cfg = millipage::HostRunConfig {
        hosts,
        views,
        pages,
        diag,
        adapt,
    };
    let sum = parking_lot::Mutex::new(0.0f64);
    let report = millipage::run_host(
        cfg,
        |s| setup(s, p),
        |ctx, sh| {
            worker(ctx, sh);
            if ctx.host().index() == 0 {
                *sum.lock() = checksum(ctx, sh);
            }
        },
    )
    .map_err(|e| e.to_string())?;
    if !report.errors.is_empty() {
        return Err(report.errors.join("; "));
    }
    Ok(crate::HostAppRun {
        report,
        checksum: sum.into_inner(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::close;
    use millipage::AllocMode;

    fn cfg(hosts: usize) -> ClusterConfig {
        ClusterConfig {
            hosts,
            views: 16,
            pages: 256,
            alloc_mode: AllocMode::FINE,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn sor_matches_reference_on_one_host() {
        let p = SorParams::small();
        let run = run_sor(cfg(1), p);
        assert!(run.report.coherence_violations.is_empty());
        assert!(
            close(run.checksum, reference(p), 1e-6),
            "{} vs {}",
            run.checksum,
            reference(p)
        );
    }

    #[test]
    fn sor_matches_reference_on_four_hosts() {
        let p = SorParams::small();
        let run = run_sor(cfg(4), p);
        assert!(run.report.coherence_violations.is_empty());
        assert!(
            close(run.checksum, reference(p), 1e-6),
            "{} vs {}",
            run.checksum,
            reference(p)
        );
        // Row-granularity sharing: only band-boundary rows move. For 4
        // hosts that is a handful of rows per phase, not the whole matrix.
        let phases = 2 * p.iters as u64;
        let boundary_budget = 8 * phases * 4;
        assert!(
            run.report.read_faults < boundary_budget,
            "read faults {} exceed boundary traffic budget {}",
            run.report.read_faults,
            boundary_budget
        );
    }

    #[test]
    fn sor_barrier_count_matches_table_2_shape() {
        // 2 barriers per iteration plus the final one (Table 2: 21 for
        // 10 iterations), plus the untimed initialization barrier.
        let p = SorParams::small();
        let run = run_sor(cfg(2), p);
        assert_eq!(run.report.barriers, 2 * p.iters as u64 + 2);
    }

    #[test]
    fn reference_is_deterministic() {
        let p = SorParams::small();
        assert_eq!(reference(p), reference(p));
    }
}
