//! IS — the NAS Integer Sort kernel (bucket-ranking core).
//!
//! §4.3: "IS allocates a shared portion of memory where the keys reside.
//! The array is relatively small and is divided into regions of equal size
//! where each host is in charge of another region. We modified the
//! allocation routine to have these regions allocated separately and thus
//! reside in different minipages."
//!
//! The shared state is the 2 KB bucket histogram (2⁹ buckets of `u32`),
//! split into `regions` separately-allocated 256-byte minipages (Table 2:
//! 8 views). Each iteration every host counts its private keys and then
//! merges its private histogram into the shared one region by region in a
//! rotated schedule with a barrier per step, so hosts always touch
//! disjoint regions — 9 barriers per iteration on 8 hosts, matching the
//! paper's 90 barriers for 10 iterations.

use crate::{band, cal, AppRun, TimedAgg};
use millipage::{run, ClusterConfig, Dsm, SetupCtx, SharedVec};
use sim_core::SplitMix64;

/// IS workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct IsParams {
    /// Total keys (the paper: 2²³).
    pub keys: usize,
    /// Key value range / bucket count (the paper: 2⁹ = 512).
    pub max_key: usize,
    /// Ranking iterations (the paper's class sizes use 10).
    pub iters: usize,
    /// Histogram regions (the paper: 8 regions of 64 buckets = 256 B).
    pub regions: usize,
    /// Workload seed.
    pub seed: u64,
}

impl IsParams {
    /// The paper's input set: 2²³ keys, 2⁹ values, 10 iterations,
    /// 8 × 256 B regions.
    pub fn paper() -> Self {
        Self {
            keys: 1 << 23,
            max_key: 1 << 9,
            iters: 10,
            regions: 8,
            seed: 0x15AB,
        }
    }

    /// A test-sized instance.
    pub fn small() -> Self {
        Self {
            keys: 1 << 12,
            max_key: 1 << 7,
            iters: 3,
            regions: 8,
            seed: 0x15AB,
        }
    }

    fn buckets_per_region(&self) -> usize {
        self.max_key / self.regions
    }
}

/// The private keys of one host (deterministic per host and iteration
/// independent, like the NAS generator's per-process streams).
fn host_keys(p: IsParams, hosts: usize, host: usize) -> Vec<u32> {
    let r = band(p.keys, hosts, host);
    let mut rng = SplitMix64::new(p.seed ^ (host as u64) << 32);
    (r.start..r.end)
        .map(|_| rng.next_range(p.max_key as u64) as u32)
        .collect()
}

/// Sequential reference: the final histogram checksum
/// (Σ bucket · count · iters-invariant form).
pub fn reference(p: IsParams, hosts: usize) -> f64 {
    let mut hist = vec![0u64; p.max_key];
    for h in 0..hosts {
        for k in host_keys(p, hosts, h) {
            hist[k as usize] += 1;
        }
    }
    // Each iteration adds the same counts into the shared array.
    hist.iter()
        .enumerate()
        .map(|(b, &c)| (b as f64 + 1.0) * (c * p.iters as u64) as f64)
        .sum()
}

/// Shared handles: one `SharedVec<u32>` per histogram region.
pub struct IsShared {
    regions: Vec<SharedVec<u32>>,
    params: IsParams,
}

/// Allocates the region-split histogram.
pub fn setup(s: &mut SetupCtx, p: IsParams) -> IsShared {
    assert_eq!(p.max_key % p.regions, 0, "regions must divide max_key");
    let bpr = p.buckets_per_region();
    let regions = (0..p.regions)
        .map(|_| s.alloc_vec_init(&vec![0u32; bpr]))
        .collect();
    IsShared { regions, params: p }
}

/// The per-host program.
pub fn worker<D: Dsm>(ctx: &mut D, sh: &IsShared) {
    let p = sh.params;
    let hosts = ctx.hosts();
    let me = ctx.host().index();
    let keys = host_keys(p, hosts, me);
    let bpr = p.buckets_per_region();
    // Claim phase: host h owns region h (zero it), then start timing.
    if me < p.regions {
        ctx.write_range(&sh.regions[me], 0, &vec![0u32; bpr]);
    }
    ctx.barrier();
    ctx.timer_reset();
    for _ in 0..p.iters {
        // Local counting phase.
        let mut private = vec![0u32; p.max_key];
        for &k in &keys {
            private[k as usize] += 1;
        }
        ctx.compute(cal::IS_KEY_NS * keys.len() as u64);
        // Rotated merge: step s gives host h region (h + s) mod R, so all
        // hosts update disjoint regions between consecutive barriers.
        for s in 0..p.regions {
            let r = (me + s) % p.regions;
            let mut reg = ctx.read_range(&sh.regions[r], 0..bpr);
            for (b, slot) in reg.iter_mut().enumerate() {
                *slot += private[r * bpr + b];
            }
            ctx.compute(cal::IS_BUCKET_NS * bpr as u64);
            ctx.write_range(&sh.regions[r], 0, &reg);
            ctx.barrier();
        }
        ctx.barrier();
    }
}

/// Checksum over the shared histogram (host 0, after the final barrier).
pub fn checksum<D: Dsm>(ctx: &mut D, sh: &IsShared) -> f64 {
    let p = sh.params;
    let bpr = p.buckets_per_region();
    let mut sum = 0.0;
    for (r, reg) in sh.regions.iter().enumerate() {
        for (b, c) in ctx.read_range(reg, 0..bpr).into_iter().enumerate() {
            sum += ((r * bpr + b) as f64 + 1.0) * c as f64;
        }
    }
    sum
}

/// Runs IS on a cluster configured by `cfg`.
pub fn run_is(mut cfg: ClusterConfig, p: IsParams) -> AppRun {
    assert!(
        cfg.hosts <= p.regions,
        "the rotated merge needs at least as many regions as hosts"
    );
    cfg.views = cfg.views.max(p.regions);
    let sum = parking_lot::Mutex::new(0.0f64);
    let timed = TimedAgg::new();
    let report = run(
        cfg,
        |s| setup(s, p),
        |ctx, sh| {
            worker(ctx, sh);
            timed.record(ctx);
            if ctx.host().index() == 0 {
                *sum.lock() = checksum(ctx, sh);
            }
        },
    );
    let (timed_ns, timed_breakdown) = timed.take();
    AppRun {
        report,
        checksum: sum.into_inner(),
        timed_ns,
        timed_breakdown,
    }
}

/// Runs IS on the real-memory backend (Linux): same workers, same
/// checksum, real SIGSEGV faults.
#[cfg(target_os = "linux")]
pub fn run_is_host(hosts: usize, p: IsParams) -> Result<crate::HostAppRun, String> {
    run_is_host_cfg(hosts, p, false)
}

/// [`run_is_host`] with per-minipage sharing diagnostics recorded (the
/// counters `repro diagnose --backend host` cross-checks against the sim).
#[cfg(target_os = "linux")]
pub fn run_is_host_diag(hosts: usize, p: IsParams) -> Result<crate::HostAppRun, String> {
    run_is_host_cfg(hosts, p, true)
}

#[cfg(target_os = "linux")]
fn run_is_host_cfg(hosts: usize, p: IsParams, diag: bool) -> Result<crate::HostAppRun, String> {
    assert!(
        hosts <= p.regions,
        "the rotated merge needs at least as many regions as hosts"
    );
    let cfg = millipage::HostRunConfig {
        hosts,
        views: p.regions.max(4),
        pages: 64,
        diag,
        adapt: millipage::AdaptConfig::default(),
    };
    let sum = parking_lot::Mutex::new(0.0f64);
    let report = millipage::run_host(
        cfg,
        |s| setup(s, p),
        |ctx, sh| {
            worker(ctx, sh);
            if ctx.host().index() == 0 {
                *sum.lock() = checksum(ctx, sh);
            }
        },
    )
    .map_err(|e| e.to_string())?;
    if !report.errors.is_empty() {
        return Err(report.errors.join("; "));
    }
    Ok(crate::HostAppRun {
        report,
        checksum: sum.into_inner(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::close;

    fn cfg(hosts: usize) -> ClusterConfig {
        ClusterConfig {
            hosts,
            views: 8,
            pages: 64,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn is_matches_reference_single_host() {
        let p = IsParams::small();
        let r = run_is(cfg(1), p);
        assert!(r.report.coherence_violations.is_empty());
        assert!(close(r.checksum, reference(p, 1), 1e-9));
    }

    #[test]
    fn is_matches_reference_eight_hosts() {
        let p = IsParams::small();
        let r = run_is(cfg(8), p);
        assert!(r.report.coherence_violations.is_empty());
        assert!(
            close(r.checksum, reference(p, 8), 1e-9),
            "{} vs {}",
            r.checksum,
            reference(p, 8)
        );
    }

    #[test]
    fn is_barrier_count_matches_table_2_shape() {
        // (regions + 1) barriers per iteration: Table 2 reports 90 for 10
        // iterations on 8 regions.
        let p = IsParams::small();
        let r = run_is(cfg(4), p);
        // Plus the untimed initialization barrier.
        assert_eq!(r.report.barriers, ((p.regions + 1) * p.iters + 1) as u64);
    }

    #[test]
    fn is_uses_8_views_and_2kb_shared() {
        let p = IsParams::small();
        let r = run_is(cfg(8), p);
        // 128 buckets in 8 regions of 64 B each → 8 views, one per region.
        assert_eq!(r.report.alloc.views_used, 8);
        assert_eq!(r.report.alloc.bytes_requested, (p.max_key * 4) as u64);
    }

    #[test]
    fn host_keys_are_deterministic_and_partitioned() {
        let p = IsParams::small();
        let a = host_keys(p, 4, 2);
        let b = host_keys(p, 4, 2);
        assert_eq!(a, b);
        let total: usize = (0..4).map(|h| host_keys(p, 4, h).len()).sum();
        assert_eq!(total, p.keys);
        assert!(a.iter().all(|&k| (k as usize) < p.max_key));
    }
}
