//! TSP — branch-and-bound traveling salesperson (TreadMarks suite).
//!
//! §4.3: "TSP allocates a global memory structure that contains an array
//! of tours. Each tour (TourElement) is of size 148 bytes and each tour is
//! manipulated exclusively by one of the tasks. We extracted the array out
//! of the global memory structure ... and allocated each tour
//! independently so that each one resides in a separate minipage" —
//! 148-byte minipages, 27 per page, 27 views (Table 2).
//!
//! "False sharing was resolved in TSP, except for a single data race for
//! updating the minimal tour found so far. Although the modification of
//! this variable is protected by means of mutual exclusion, it is
//! frequently read through an unprotected section. We changed a single
//! code line ... so that it pushes readable copies of the new value to all
//! hosts" — reproduced here with [`HostCtx::push_cell`].
//!
//! Workers expand partial tours from a shared stack (one queue lock
//! covering pop + child pushes) down to `recursion_limit` cities, then
//! solve the remaining suffix exactly with a local depth-first search.

use crate::{cal, AppRun, TimedAgg};
use millipage::{run, ClusterConfig, HostCtx, SetupCtx, SharedCell, SharedVec};
use sim_core::SplitMix64;

/// `i32`s per tour element: 37 × 4 = 148 bytes (Table 2).
pub const TOUR_I32S: usize = 37;
/// Tour layout: `[len, cost, visited_mask, cities[19], pad…]`.
const T_LEN: usize = 0;
const T_COST: usize = 1;
const T_MASK: usize = 2;
const T_CITIES: usize = 3;

/// The queue lock (pop + push under one acquisition, TreadMarks-style).
const QUEUE_LOCK: u64 = 1;
/// The best-bound lock.
const BOUND_LOCK: u64 = 2;

/// TSP workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct TspParams {
    /// Number of cities (the paper: 19).
    pub cities: usize,
    /// Queue recursion level: prefixes longer than this are solved locally
    /// (the paper: 12).
    pub recursion_limit: usize,
    /// Tour-pool capacity (the paper's shared size, 785 KB, corresponds to
    /// roughly 5000 tour elements).
    pub max_tours: usize,
    /// Coordinate seed.
    pub seed: u64,
}

impl TspParams {
    /// The paper's input set: 19 cities, recursion level 12.
    pub fn paper() -> Self {
        Self {
            cities: 19,
            recursion_limit: 12,
            max_tours: 5000,
            seed: 0x75,
        }
    }

    /// A test-sized instance.
    pub fn small() -> Self {
        Self {
            cities: 10,
            recursion_limit: 6,
            max_tours: 1200,
            seed: 0x75,
        }
    }
}

/// Deterministic city distance matrix: integer Euclidean distances of
/// seeded points on a 1000×1000 grid.
pub fn distances(p: TspParams) -> Vec<Vec<i32>> {
    let mut rng = SplitMix64::new(p.seed);
    let pts: Vec<(f64, f64)> = (0..p.cities)
        .map(|_| (rng.next_f64() * 1000.0, rng.next_f64() * 1000.0))
        .collect();
    (0..p.cities)
        .map(|i| {
            (0..p.cities)
                .map(|j| {
                    let dx = pts[i].0 - pts[j].0;
                    let dy = pts[i].1 - pts[j].1;
                    (dx * dx + dy * dy).sqrt().round() as i32
                })
                .collect()
        })
        .collect()
}

/// A greedy nearest-neighbour tour improved by 2-opt: the initial upper
/// bound. A tight starting bound is what keeps the branch-and-bound
/// queue small (Table 2's 681 locks imply a few hundred queue
/// operations for the whole 19-city run).
fn greedy_bound(d: &[Vec<i32>]) -> i32 {
    let n = d.len();
    let mut visited = vec![false; n];
    visited[0] = true;
    let mut tour = vec![0usize];
    let mut at = 0;
    for _ in 1..n {
        let next = (0..n)
            .filter(|&c| !visited[c])
            .min_by_key(|&c| d[at][c])
            .expect("unvisited city exists");
        visited[next] = true;
        tour.push(next);
        at = next;
    }
    // 2-opt until no improving exchange remains.
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..n - 1 {
            for j in i + 2..n {
                let (a, b) = (tour[i], tour[i + 1]);
                let (c, e) = (tour[j], tour[(j + 1) % n]);
                if a == e {
                    continue;
                }
                let delta = d[a][c] + d[b][e] - d[a][b] - d[c][e];
                if delta < 0 {
                    tour[i + 1..=j].reverse();
                    improved = true;
                }
            }
        }
    }
    (0..n).map(|i| d[tour[i]][tour[(i + 1) % n]]).sum()
}

/// Admissible lower bound on completing a partial tour: every city still
/// to be visited (and the final return) must leave over its cheapest
/// usable edge. Standard branch-and-bound pruning; keeps the 19-city
/// paper input tractable exactly like the TreadMarks original.
fn lower_bound(d: &[Vec<i32>], mask: u32, at: usize) -> i32 {
    let n = d.len();
    let mut lb = 0;
    // The current city must leave toward an unvisited city.
    let mut out_min = i32::MAX;
    for c in 0..n {
        if mask & (1 << c) == 0 && c != at {
            out_min = out_min.min(d[at][c]);
        }
    }
    if out_min == i32::MAX {
        return d[at][0]; // Everything visited: only the return remains.
    }
    lb += out_min;
    // Every unvisited city must be left toward another unvisited city or
    // back to the start.
    for c in 0..n {
        if mask & (1 << c) != 0 {
            continue;
        }
        let mut m = d[c][0];
        for k in 0..n {
            if k != c && (mask & (1 << k) == 0 || k == 0) {
                m = m.min(d[c][k]);
            }
        }
        lb += m;
    }
    lb
}

/// Exact DFS over the remaining suffix; returns the best completion of
/// `(path, cost)` and the number of nodes visited (for compute charging).
fn solve_suffix(
    d: &[Vec<i32>],
    path: &mut Vec<usize>,
    mask: u32,
    cost: i32,
    best: &mut i32,
    nodes: &mut u64,
) {
    *nodes += 1;
    let n = d.len();
    if cost >= *best {
        return;
    }
    if path.len() < n && cost + lower_bound(d, mask, *path.last().expect("non-empty")) >= *best {
        return;
    }
    if path.len() == n {
        let total = cost + d[*path.last().expect("non-empty")][path[0]];
        if total < *best {
            *best = total;
        }
        return;
    }
    let at = *path.last().expect("non-empty");
    for c in 0..n {
        if mask & (1 << c) != 0 {
            continue;
        }
        path.push(c);
        solve_suffix(d, path, mask | (1 << c), cost + d[at][c], best, nodes);
        path.pop();
    }
}

/// Sequential reference: the optimal tour cost.
pub fn reference(p: TspParams) -> f64 {
    let d = distances(p);
    let mut best = greedy_bound(&d);
    let mut path = vec![0usize];
    let mut nodes = 0u64;
    solve_suffix(&d, &mut path, 1, 0, &mut best, &mut nodes);
    best as f64
}

/// Shared handles for TSP.
pub struct TspShared {
    /// The tour pool, one 148-byte element per allocation.
    tours: Vec<SharedVec<i32>>,
    /// Stack of tour-pool indices.
    stack: SharedVec<i32>,
    /// Stack depth.
    top: SharedCell<i32>,
    /// Free-list of recycled pool slots (stack of indices).
    free: SharedVec<i32>,
    /// Free-list depth.
    free_top: SharedCell<i32>,
    /// Tours popped but not yet fully expanded (termination detection).
    outstanding: SharedCell<i32>,
    /// The minimal tour found so far (read unprotected, pushed on update).
    best: SharedCell<i32>,
    params: TspParams,
}

/// Allocates the tour pool (each tour separately), the work stack, and the
/// bound cell; seeds the stack with the root tour.
pub fn setup(s: &mut SetupCtx, p: TspParams) -> TspShared {
    assert!(p.cities <= 19, "tour layout holds at most 19 cities");
    assert!(p.recursion_limit < p.cities);
    let tours: Vec<SharedVec<i32>> = (0..p.max_tours)
        .map(|_| s.alloc_vec::<i32>(TOUR_I32S))
        .collect();
    s.new_page();
    let stack = s.alloc_vec::<i32>(p.max_tours);
    let top = s.alloc_cell_init(1i32);
    let free = s.alloc_vec::<i32>(p.max_tours);
    let free_top = s.alloc_cell_init(0i32);
    let outstanding = s.alloc_cell_init(0i32);
    let d = distances(p);
    let best = s.alloc_cell_init(greedy_bound(&d));
    // Root tour: city 0 visited, zero cost.
    let mut root = [0i32; TOUR_I32S];
    root[T_LEN] = 1;
    root[T_COST] = 0;
    root[T_MASK] = 1;
    root[T_CITIES] = 0;
    s.write_vec(&tours[0], 0, &root);
    s.write_vec(&stack, 0, &[0i32]);
    TspShared {
        tours,
        stack,
        top,
        free,
        free_top,
        outstanding,
        best,
        params: p,
    }
}

/// Pops a work item; returns its pool slot, or `None` when the stack is
/// empty. Must run under `QUEUE_LOCK`.
fn pop(ctx: &mut HostCtx, sh: &TspShared) -> Option<usize> {
    let t = ctx.cell_get(&sh.top);
    if t == 0 {
        return None;
    }
    let slot = ctx.get(&sh.stack, (t - 1) as usize);
    ctx.cell_set(&sh.top, t - 1);
    Some(slot as usize)
}

/// Takes a pool slot for a child tour. Must run under `QUEUE_LOCK`.
fn take_slot(ctx: &mut HostCtx, sh: &TspShared, next_fresh: &mut usize) -> usize {
    let ft = ctx.cell_get(&sh.free_top);
    if ft > 0 {
        let slot = ctx.get(&sh.free, (ft - 1) as usize);
        ctx.cell_set(&sh.free_top, ft - 1);
        return slot as usize;
    }
    let slot = *next_fresh;
    assert!(
        slot < sh.params.max_tours,
        "tour pool exhausted ({} slots)",
        sh.params.max_tours
    );
    *next_fresh += 1;
    slot
}

/// The per-host program.
pub fn worker(ctx: &mut HostCtx, sh: &TspShared) {
    let p = sh.params;
    let d = distances(p);
    let mut idle_backoff: u64 = 100_000;
    ctx.barrier();
    ctx.timer_reset();
    loop {
        // Unprotected read of the pushed bound (the paper's data race).
        let mut best_seen = ctx.cell_get(&sh.best);
        ctx.lock(QUEUE_LOCK);
        let item = pop(ctx, sh);
        if item.is_some() {
            let o = ctx.cell_get(&sh.outstanding);
            ctx.cell_set(&sh.outstanding, o + 1);
        }
        let outstanding = ctx.cell_get(&sh.outstanding);
        let stack_len = ctx.cell_get(&sh.top) as usize;
        ctx.unlock(QUEUE_LOCK);
        let Some(slot) = item else {
            if outstanding == 0 {
                break; // Stack empty and nobody expanding: done.
            }
            // Exponential idle back-off: idle workers must not drown the
            // manager in queue polls.
            ctx.compute(idle_backoff);
            idle_backoff = (idle_backoff * 2).min(2_000_000);
            continue;
        };
        idle_backoff = 100_000;
        // Read the popped tour element (exclusively manipulated by us).
        let mut pending_children: Vec<[i32; TOUR_I32S]> = Vec::new();
        let tour = ctx.read_range(&sh.tours[slot], 0..TOUR_I32S);
        let len = tour[T_LEN] as usize;
        let cost = tour[T_COST];
        let mask = tour[T_MASK] as u32;
        let at = tour[T_CITIES + len - 1] as usize;
        // Expand into the shared queue only while it is short (work
        // starvation looms) and the prefix is shallow; otherwise solve
        // the whole subtree locally. This is how the TreadMarks TSP keeps
        // its queue traffic to a few hundred lock acquisitions.
        let solve_locally = len + p.recursion_limit >= p.cities
            || len > 4
            || outstanding as usize + stack_len >= 3 * ctx.hosts();
        if cost < best_seen {
            if solve_locally {
                // Solve the suffix locally and exactly.
                let mut path: Vec<usize> = tour[T_CITIES..T_CITIES + len]
                    .iter()
                    .map(|&c| c as usize)
                    .collect();
                let mut local_best = best_seen;
                let mut nodes = 0u64;
                solve_suffix(&d, &mut path, mask, cost, &mut local_best, &mut nodes);
                ctx.compute(cal::TSP_NODE_NS * nodes.max(1));
                if local_best < best_seen {
                    // Locked update + push of the new bound (§4.3).
                    ctx.lock(BOUND_LOCK);
                    let cur = ctx.cell_get(&sh.best);
                    if local_best < cur {
                        ctx.cell_set(&sh.best, local_best);
                        ctx.push_cell(&sh.best);
                    }
                    ctx.unlock(BOUND_LOCK);
                    best_seen = local_best;
                }
            } else {
                // Expand one level; children queue under the single lock
                // section below.
                let mut children: Vec<[i32; TOUR_I32S]> = Vec::new();
                for c in 0..p.cities {
                    if mask & (1 << c) != 0 {
                        continue;
                    }
                    let ncost = cost + d[at][c];
                    if ncost >= best_seen
                        || ncost + lower_bound(&d, mask | (1 << c), c) >= best_seen
                    {
                        continue; // Prune (bound or admissible lower bound).
                    }
                    let mut child = [0i32; TOUR_I32S];
                    child[..T_CITIES + len].copy_from_slice(&tour[..T_CITIES + len]);
                    child[T_LEN] = (len + 1) as i32;
                    child[T_COST] = ncost;
                    child[T_MASK] = (mask | (1 << c)) as i32;
                    child[T_CITIES + len] = c as i32;
                    children.push(child);
                }
                ctx.compute(cal::TSP_NODE_NS * p.cities as u64);
                pending_children = children;
            }
        }
        // One lock section: push children, recycle the slot, retire the
        // work item (TreadMarks batches its queue manipulation the same
        // way — Table 2's lock count stays in the hundreds).
        ctx.lock(QUEUE_LOCK);
        if !pending_children.is_empty() {
            let mut t = ctx.cell_get(&sh.top);
            let mut fresh = fresh_cursor_read(ctx, sh);
            for child in &pending_children {
                let cslot = take_slot(ctx, sh, &mut fresh);
                ctx.write_range(&sh.tours[cslot], 0, child);
                ctx.set(&sh.stack, t as usize, cslot as i32);
                t += 1;
            }
            fresh_cursor_write(ctx, sh, fresh);
            ctx.cell_set(&sh.top, t);
        }
        let ft = ctx.cell_get(&sh.free_top);
        assert!(
            (ft as usize) < sh.params.max_tours - 1,
            "free list overflow into the fresh-slot cursor"
        );
        ctx.set(&sh.free, ft as usize, slot as i32);
        ctx.cell_set(&sh.free_top, ft + 1);
        let o = ctx.cell_get(&sh.outstanding);
        ctx.cell_set(&sh.outstanding, o - 1);
        ctx.unlock(QUEUE_LOCK);
    }
    ctx.barrier();
}

/// The shared fresh-slot cursor lives in the last element of the free
/// array (slot indices never reach it: the pool keeps one spare).
fn fresh_cursor_read(ctx: &mut HostCtx, sh: &TspShared) -> usize {
    ctx.get(&sh.free, sh.params.max_tours - 1) as usize
}

fn fresh_cursor_write(ctx: &mut HostCtx, sh: &TspShared, v: usize) {
    ctx.set(&sh.free, sh.params.max_tours - 1, v as i32);
}

/// Runs TSP on a cluster configured by `cfg`; the checksum is the optimal
/// tour cost.
pub fn run_tsp(mut cfg: ClusterConfig, p: TspParams) -> AppRun {
    let bytes = p.max_tours * (TOUR_I32S * 4 + 8) + 64;
    cfg.pages = cfg.pages.max(bytes / 4096 * 2 + 64);
    cfg.views = cfg.views.max(27);
    let sum = parking_lot::Mutex::new(0.0f64);
    let timed = TimedAgg::new();
    let report = run(
        cfg,
        |s| {
            let sh = setup(s, p);
            // Initialize the fresh-slot cursor to 1 (root occupies slot 0).
            s.write_vec(&sh.free, p.max_tours - 1, &[1i32]);
            sh
        },
        |ctx, sh| {
            worker(ctx, sh);
            timed.record(ctx);
            if ctx.host().index() == 0 {
                *sum.lock() = ctx.cell_get(&sh.best) as f64;
            }
        },
    );
    let (timed_ns, timed_breakdown) = timed.take();
    AppRun {
        report,
        checksum: sum.into_inner(),
        timed_ns,
        timed_breakdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(hosts: usize) -> ClusterConfig {
        ClusterConfig {
            hosts,
            views: 27,
            pages: 512,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn tsp_finds_the_optimum_single_host() {
        let p = TspParams::small();
        let r = run_tsp(cfg(1), p);
        assert!(r.report.coherence_violations.is_empty());
        assert_eq!(r.checksum, reference(p));
    }

    #[test]
    fn tsp_finds_the_optimum_four_hosts() {
        let p = TspParams::small();
        let r = run_tsp(cfg(4), p);
        assert!(r.report.coherence_violations.is_empty());
        assert_eq!(r.checksum, reference(p));
        assert!(r.report.lock_acquires > 0);
        // Note: the 2-opt starting bound often IS the optimum on small
        // instances, in which case no improved bound is ever pushed — the
        // push path itself is covered by the protocol smoke tests.
    }

    #[test]
    fn tsp_tours_are_148_bytes_in_27_views() {
        let p = TspParams::small();
        let r = run_tsp(cfg(2), p);
        // The 4-byte control cells share a separate page; the tour pool
        // dominates the view count: 148-byte tours pack 27 to a page.
        assert_eq!(r.report.alloc.views_used, 27);
        assert_eq!(r.report.alloc.min_granularity, 4);
    }

    #[test]
    fn lower_bound_is_admissible() {
        // The lower bound from the root must not exceed the optimum.
        let p = TspParams::small();
        let d = distances(p);
        let lb = lower_bound(&d, 1, 0);
        assert!(lb as f64 <= reference(p), "lb {lb} vs opt {}", reference(p));
    }

    #[test]
    fn greedy_bound_is_a_valid_upper_bound() {
        let p = TspParams::small();
        let d = distances(p);
        assert!(greedy_bound(&d) as f64 >= reference(p));
    }

    #[test]
    fn distances_are_symmetric_with_zero_diagonal() {
        let d = distances(TspParams::small());
        for i in 0..d.len() {
            assert_eq!(d[i][i], 0);
            for j in 0..d.len() {
                assert_eq!(d[i][j], d[j][i]);
            }
        }
    }
}
