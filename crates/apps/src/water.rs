//! WATER — the SPLASH-2 n-squared molecular dynamics kernel.
//!
//! §4.3: "In the original code for WATER, all the molecules are stored in
//! a single array (VAR) and are referenced via pointers. We altered the
//! main function so that each molecule will be allocated separately." Each
//! molecule is 672 bytes (Table 2), so six molecules share a physical page
//! through six views.
//!
//! The phase structure reproduces the behaviour the paper analyses:
//!
//! * a **read phase** at the start of every step in which each host brings
//!   in *all* molecules ("each processor brings in the entire molecules'
//!   structure") — the phase that makes fine-grain allocation expensive
//!   and chunking (§4.4) attractive;
//! * a pairwise **force phase** over the half shell, with per-molecule
//!   locked updates of foreign molecules' force fields;
//! * an unprotected read path racing the locked writers — the Write-Read
//!   data race of Perkovic & Keleher that the paper identifies as the
//!   source of its 21 competing requests at chunking level 1.
//!
//! Floating-point note: foreign force contributions arrive in a
//! host-count- and timing-dependent order, so checksums are compared with
//! a relative tolerance.

use crate::{band, cal, AppRun, TimedAgg};
use millipage::{run, ClusterConfig, HostCtx, SetupCtx, SharedVec};

/// Doubles per molecule: 84 × 8 = 672 bytes (Table 2).
pub const MOL_F64S: usize = 84;
/// Offset of the position triple.
const POS: usize = 0;
/// Offset of the velocity triple.
const VEL: usize = 3;
/// Offset of the force triple.
const FRC: usize = 6;

/// Lock-id base for per-molecule force locks.
const MOL_LOCK_BASE: u64 = 1000;
/// The global kinetic-energy reduction lock.
const KINETIC_LOCK: u64 = 1;

/// WATER workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct WaterParams {
    /// Number of molecules (the paper: 512).
    pub molecules: usize,
    /// Timesteps.
    pub steps: usize,
    /// Integration step.
    pub dt: f64,
    /// Run the read phase through the §5 composed-view group fetch
    /// (pipelined prefetches) instead of serial faulting — the paper's
    /// own suggested use of composed views. Off by default (the paper's
    /// measured configuration).
    pub grouped_read: bool,
    /// Workload seed (initial positions / velocities).
    pub seed: u64,
}

impl WaterParams {
    /// The paper's input set: 512 molecules.
    pub fn paper() -> Self {
        Self {
            molecules: 512,
            steps: 3,
            dt: 1e-3,
            grouped_read: false,
            seed: 0xAA7E4,
        }
    }

    /// A test-sized instance.
    pub fn small() -> Self {
        Self {
            molecules: 24,
            steps: 2,
            dt: 1e-3,
            grouped_read: false,
            seed: 0xAA7E4,
        }
    }
}

/// Deterministic initial state of molecule `i`: position on a skewed
/// lattice, small velocity, zero force.
fn initial(i: usize, seed: u64) -> [f64; MOL_F64S] {
    let mut m = [0.0; MOL_F64S];
    let s = (seed as f64).sin().abs() + 1.0;
    m[POS] = (i % 8) as f64 * 1.7 + s;
    m[POS + 1] = ((i / 8) % 8) as f64 * 1.3;
    m[POS + 2] = (i / 64) as f64 * 2.1;
    m[VEL] = ((i * 37 + 11) % 17) as f64 * 0.01 - 0.08;
    m[VEL + 1] = ((i * 53 + 7) % 19) as f64 * 0.01 - 0.09;
    m[VEL + 2] = ((i * 71 + 3) % 23) as f64 * 0.01 - 0.11;
    m
}

/// The pairwise force kernel: a smooth short-range attraction/repulsion of
/// the displacement (standing in for the water potential).
fn pair_force(pi: &[f64; 3], pj: &[f64; 3]) -> [f64; 3] {
    let dx = pj[0] - pi[0];
    let dy = pj[1] - pi[1];
    let dz = pj[2] - pi[2];
    let r2 = dx * dx + dy * dy + dz * dz;
    let w = 1.0 / (1.0 + r2) - 0.05 / (1.0 + r2 * r2);
    [dx * w, dy * w, dz * w]
}

/// Half-shell partner list of molecule `i`: `i+1 ..= i+n/2` (mod n), the
/// SPLASH-2 assignment that computes each pair exactly once.
fn half_shell(i: usize, n: usize) -> impl Iterator<Item = usize> {
    (1..=n / 2).map(move |d| (i + d) % n)
}

/// Sequential reference: accumulated kinetic energy + final position sum.
pub fn reference(p: WaterParams) -> f64 {
    let n = p.molecules;
    let mut mols: Vec<[f64; MOL_F64S]> = (0..n).map(|i| initial(i, p.seed)).collect();
    let mut kinetic = 0.0f64;
    for _ in 0..p.steps {
        let snapshot: Vec<[f64; 3]> = mols
            .iter()
            .map(|m| [m[POS], m[POS + 1], m[POS + 2]])
            .collect();
        let mut acc = vec![[0.0f64; 3]; n];
        for (i, si) in snapshot.iter().enumerate() {
            for j in half_shell(i, n) {
                let f = pair_force(si, &snapshot[j]);
                for d in 0..3 {
                    acc[i][d] += f[d];
                    acc[j][d] -= f[d];
                }
            }
        }
        for (i, m) in mols.iter_mut().enumerate() {
            for d in 0..3 {
                let f = m[FRC + d] + acc[i][d];
                m[VEL + d] += f * p.dt;
                m[POS + d] += m[VEL + d] * p.dt;
                m[FRC + d] = 0.0;
            }
        }
        kinetic += mols
            .iter()
            .map(|m| m[VEL] * m[VEL] + m[VEL + 1] * m[VEL + 1] + m[VEL + 2] * m[VEL + 2])
            .sum::<f64>();
    }
    let possum: f64 = mols.iter().map(|m| m[POS] + m[POS + 1] + m[POS + 2]).sum();
    kinetic + possum
}

/// Shared handles: one `SharedVec<f64>` per molecule plus the kinetic sum.
pub struct WaterShared {
    mols: Vec<SharedVec<f64>>,
    kinetic: millipage::SharedCell<f64>,
    params: WaterParams,
}

/// Allocates each molecule separately (the paper's modification);
/// molecule contents are written by their owners in the claim phase.
pub fn setup(s: &mut SetupCtx, p: WaterParams) -> WaterShared {
    let mols = (0..p.molecules).map(|_| s.alloc_vec(MOL_F64S)).collect();
    s.new_page();
    let kinetic = s.alloc_cell_init(0.0f64);
    WaterShared {
        mols,
        kinetic,
        params: p,
    }
}

/// The per-host program.
pub fn worker(ctx: &mut HostCtx, sh: &WaterShared) {
    let p = sh.params;
    let n = p.molecules;
    let hosts = ctx.hosts();
    let my = band(n, hosts, ctx.host().index());
    // Claim phase: each host initializes (and owns) its molecules.
    for i in my.clone() {
        ctx.write_range(&sh.mols[i], 0, &initial(i, p.seed));
    }
    ctx.barrier();
    ctx.timer_reset();
    for _ in 0..p.steps {
        // Read phase: bring in the entire molecules' structure. Foreign
        // molecules fault in at the sharing granularity. Deliberately NOT
        // barrier-separated from the force scatter below: fast hosts start
        // writing force fields while slow hosts still read — the paper's
        // Write-Read race, observed as competing requests at the manager.
        // With `grouped_read` the fetches pipeline through the composed-
        // view group API (§5's suggested coarse-grain read phase).
        if p.grouped_read {
            ctx.fetch_group(&sh.mols);
        }
        // Each host starts its sweep at its own band (hosts fetching the
        // same molecule at the same instant would needlessly queue at the
        // manager; the original's interaction loops have the same skew).
        let mut snapshot = vec![[0.0f64; 3]; n];
        for jj in 0..n {
            let j = (my.start + jj) % n;
            let m = ctx.read_range(&sh.mols[j], 0..MOL_F64S);
            snapshot[j] = [m[POS], m[POS + 1], m[POS + 2]];
        }
        // Force phase over the half shell of owned molecules; private
        // accumulation first.
        let mut acc = vec![[0.0f64; 3]; n];
        let mut pairs = 0u64;
        for i in my.clone() {
            for j in half_shell(i, n) {
                let f = pair_force(&snapshot[i], &snapshot[j]);
                for d in 0..3 {
                    acc[i][d] += f[d];
                    acc[j][d] -= f[d];
                }
                pairs += 1;
            }
        }
        ctx.compute(cal::WATER_PAIR_NS * pairs);
        // Locked scatter of foreign contributions (per-molecule locks).
        // Contributions to *owned* molecules stay private and merge in the
        // barrier-separated correction phase, like SPLASH-2's local force
        // arrays — an unlocked owner merge here would race the foreign
        // read-modify-writes and lose updates.
        for (j, a) in acc.iter().enumerate() {
            if *a == [0.0; 3] || my.contains(&j) {
                continue;
            }
            ctx.lock(MOL_LOCK_BASE + j as u64);
            let mut frc = ctx.read_range(&sh.mols[j], FRC..FRC + 3);
            for d in 0..3 {
                frc[d] += a[d];
            }
            ctx.write_range(&sh.mols[j], FRC, &frc);
            ctx.unlock(MOL_LOCK_BASE + j as u64);
        }
        ctx.barrier();
        // Correction phase: integrate owned molecules (shared force field
        // holds the foreign contributions, `acc` the local ones), clear
        // forces for the next step.
        let mut ke = 0.0f64;
        for i in my.clone() {
            let mut m = ctx.read_range(&sh.mols[i], 0..MOL_F64S);
            for d in 0..3 {
                let f = m[FRC + d] + acc[i][d];
                m[VEL + d] += f * p.dt;
                m[POS + d] += m[VEL + d] * p.dt;
                m[FRC + d] = 0.0;
            }
            ke += m[VEL] * m[VEL] + m[VEL + 1] * m[VEL + 1] + m[VEL + 2] * m[VEL + 2];
            ctx.write_range(&sh.mols[i], 0, &m);
        }
        ctx.barrier();
        // Kinetic-energy reduction under the global lock.
        ctx.lock(KINETIC_LOCK);
        let k = ctx.cell_get(&sh.kinetic);
        ctx.cell_set(&sh.kinetic, k + ke);
        ctx.unlock(KINETIC_LOCK);
        ctx.barrier();
    }
}

/// Checksum (host 0, after the final barrier): kinetic + position sum.
pub fn checksum(ctx: &mut HostCtx, sh: &WaterShared) -> f64 {
    let mut possum = 0.0;
    for m in &sh.mols {
        let v = ctx.read_range(m, POS..POS + 3);
        possum += v[0] + v[1] + v[2];
    }
    ctx.cell_get(&sh.kinetic) + possum
}

/// Runs WATER on a cluster configured by `cfg` (whose `alloc_mode` sets
/// the chunking level — the Figure 7 experiment).
pub fn run_water(mut cfg: ClusterConfig, p: WaterParams) -> AppRun {
    let bytes = p.molecules * MOL_F64S * 8;
    cfg.pages = cfg.pages.max(bytes / 4096 * 3 + 64);
    cfg.views = cfg.views.max(6);
    let sum = parking_lot::Mutex::new(0.0f64);
    let timed = TimedAgg::new();
    let report = run(
        cfg,
        |s| setup(s, p),
        |ctx, sh| {
            worker(ctx, sh);
            timed.record(ctx);
            if ctx.host().index() == 0 {
                *sum.lock() = checksum(ctx, sh);
            }
        },
    );
    let (timed_ns, timed_breakdown) = timed.take();
    AppRun {
        report,
        checksum: sum.into_inner(),
        timed_ns,
        timed_breakdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::close;
    use millipage::AllocMode;

    fn cfg(hosts: usize, mode: AllocMode) -> ClusterConfig {
        ClusterConfig {
            hosts,
            views: 8,
            pages: 128,
            alloc_mode: mode,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn water_matches_reference_single_host() {
        let p = WaterParams::small();
        let r = run_water(cfg(1, AllocMode::FINE), p);
        assert!(r.report.coherence_violations.is_empty());
        assert!(
            close(r.checksum, reference(p), 1e-9),
            "{} vs {}",
            r.checksum,
            reference(p)
        );
    }

    #[test]
    fn water_matches_reference_four_hosts() {
        let p = WaterParams::small();
        let r = run_water(cfg(4, AllocMode::FINE), p);
        assert!(r.report.coherence_violations.is_empty());
        assert!(
            close(r.checksum, reference(p), 1e-9),
            "{} vs {}",
            r.checksum,
            reference(p)
        );
        assert!(r.report.lock_acquires > 0);
    }

    #[test]
    fn water_matches_reference_with_chunking() {
        let p = WaterParams::small();
        for chunk in [2usize, 5] {
            let r = run_water(cfg(4, AllocMode::FineGrain { chunking: chunk }), p);
            assert!(r.report.coherence_violations.is_empty());
            assert!(
                close(r.checksum, reference(p), 1e-9),
                "chunk {chunk}: {} vs {}",
                r.checksum,
                reference(p)
            );
        }
    }

    #[test]
    fn water_matches_reference_page_grain() {
        // The "none" point of Figure 7: traditional page-size sharing.
        let p = WaterParams::small();
        let r = run_water(cfg(4, AllocMode::PageGrain), p);
        assert!(r.report.coherence_violations.is_empty());
        assert!(close(r.checksum, reference(p), 1e-9));
    }

    #[test]
    fn chunking_reduces_faults() {
        let p = WaterParams::small();
        let fine = run_water(cfg(4, AllocMode::FINE), p);
        let chunked = run_water(cfg(4, AllocMode::FineGrain { chunking: 6 }), p);
        let f1 = fine.report.read_faults + fine.report.write_faults;
        let f6 = chunked.report.read_faults + chunked.report.write_faults;
        assert!(
            f6 < f1,
            "chunking must reduce fault count: chunk1={f1} chunk6={f6}"
        );
    }

    #[test]
    fn molecules_use_6_views_at_fine_grain() {
        let p = WaterParams::small();
        let r = run_water(cfg(2, AllocMode::FINE), p);
        // 672-byte molecules → 6 per page → 6 views (Table 2). The
        // kinetic-energy cell lives on its own page in view 0, so the
        // dominant granularity is the molecule size.
        assert_eq!(r.report.alloc.views_used, 6);
        assert_eq!(r.report.alloc.max_granularity, 672);
    }
}
