//! The paper's application suite (§4.3, Table 2) on the Millipage DSM.
//!
//! | App   | Input set (paper)              | Sharing granularity    |
//! |-------|--------------------------------|------------------------|
//! | SOR   | 32768×64 matrices              | a row, 256 bytes       |
//! | IS    | 2²³ numbers, 2⁹ values         | 256 bytes              |
//! | WATER | 512 molecules                  | a molecule, 672 bytes  |
//! | LU    | 1024×1024 matrix, 32×32 blocks | a block, 4 KB          |
//! | TSP   | 19 cities, recursion level 12  | a tour, 148 bytes      |
//!
//! Every application follows the paper's allocation discipline ("the code
//! for memory allocation ... was slightly modified in order to equate the
//! allocations and the sharing units"): SOR allocates row by row, IS
//! allocates its histogram region by region, WATER allocates each molecule
//! separately, LU allocates 4 KB blocks, and TSP allocates each tour
//! element separately.
//!
//! Each module exposes a `Params` type (with `paper()` and `small()`
//! presets), a parallel `run_*` entry point returning an [`AppRun`], and a
//! deterministic sequential reference used by the tests to validate the
//! parallel result.

pub mod is;
pub mod lu;
pub mod sor;
pub mod tsp;
pub mod water;

use millipage::{HostCtx, Ns, RunReport, TimeBreakdown};
use parking_lot::Mutex;

/// Calibration of application compute charges, approximating the paper's
/// 300 MHz Pentium II (§4): a handful of dependent ALU/FPU operations plus
/// cache traffic per abstract "work unit".
pub mod cal {
    use millipage::Ns;

    /// One SOR stencil element update (4 loads, 3 adds, 1 mul, 1 store —
    /// roughly 18 cycles at 300 MHz with cache traffic).
    pub const SOR_ELEM_NS: Ns = 60;
    /// Counting one IS key into the private histogram (load, index,
    /// increment, store, loop — random-access cache misses included).
    pub const IS_KEY_NS: Ns = 100;
    /// Merging one histogram bucket into the shared array.
    pub const IS_BUCKET_NS: Ns = 50;
    /// One WATER pairwise interaction: the water-water potential
    /// evaluates nine site-site distances with square roots and the
    /// polynomial terms — several hundred FLOPs, i.e. mid-single-digit
    /// microseconds on the 300 MHz testbed.
    pub const WATER_PAIR_NS: Ns = 8_000;
    /// One fused multiply-add in an LU block kernel.
    pub const LU_FLOP_NS: Ns = 7;
    /// Evaluating one TSP search node (bound computation over the
    /// remaining cities).
    pub const TSP_NODE_NS: Ns = 1_000;
}

/// Result of one parallel application run.
#[derive(Clone, Debug)]
pub struct AppRun {
    /// The cluster run report (timings, faults, protocol counters).
    pub report: RunReport,
    /// An application-defined checksum of the computed result, comparable
    /// against the sequential reference.
    pub checksum: f64,
    /// Virtual time of the timed region (max over hosts): initialization
    /// and data distribution excluded, the way the paper's benchmarks
    /// measure.
    pub timed_ns: Ns,
    /// Figure 6 breakdown of the timed region.
    pub timed_breakdown: TimeBreakdown,
}

impl AppRun {
    /// Speedup of this run's timed region over a 1-host timed region.
    pub fn speedup(&self, t1_timed: Ns) -> f64 {
        t1_timed as f64 / self.timed_ns.max(1) as f64
    }
}

/// Result of one application run on the real-memory backend (Linux):
/// real SIGSEGV fault counts instead of simulated ones.
#[cfg(target_os = "linux")]
#[derive(Clone, Debug)]
pub struct HostAppRun {
    /// The host-backend run report (real fault counters, wall time).
    pub report: millipage::HostRunReport,
    /// The application checksum, comparable against both the sequential
    /// reference and the simulator run's checksum.
    pub checksum: f64,
}

/// Aggregates the timed regions of all application threads of a run.
#[derive(Default)]
pub struct TimedAgg {
    inner: Mutex<(Ns, TimeBreakdown)>,
}

impl TimedAgg {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one thread's timed region (call right after the final
    /// barrier).
    pub fn record(&self, ctx: &HostCtx) {
        let mut a = self.inner.lock();
        a.0 = a.0.max(ctx.timed());
        a.1.merge(&ctx.timed_breakdown());
    }

    /// The aggregate (max time, merged breakdown).
    pub fn take(self) -> (Ns, TimeBreakdown) {
        self.inner.into_inner()
    }
}

/// Relative comparison for checksums (LU/SOR accumulate rounding in a
/// host-count-dependent order).
pub fn close(a: f64, b: f64, rel: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1e-12);
    (a - b).abs() / scale <= rel
}

/// Splits `n` items into `parts` contiguous chunks; returns the half-open
/// range owned by `part`.
pub fn band(n: usize, parts: usize, part: usize) -> std::ops::Range<usize> {
    let base = n / parts;
    let extra = n % parts;
    let start = part * base + part.min(extra);
    let len = base + usize::from(part < extra);
    start..start + len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_partitions_exactly() {
        for n in [0usize, 1, 7, 64, 100] {
            for p in [1usize, 2, 3, 8] {
                let mut total = 0;
                let mut next = 0;
                for h in 0..p {
                    let r = band(n, p, h);
                    assert_eq!(r.start, next, "bands must be contiguous");
                    next = r.end;
                    total += r.len();
                }
                assert_eq!(total, n);
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn band_balance_is_within_one() {
        let sizes: Vec<usize> = (0..8).map(|h| band(100, 8, h).len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn close_tolerates_relative_error() {
        assert!(close(100.0, 100.0 + 1e-7, 1e-8));
        assert!(!close(100.0, 101.0, 1e-6));
        assert!(close(0.0, 0.0, 1e-12));
    }
}
