//! LU — the SPLASH-2 contiguous-blocks LU factorization.
//!
//! §4.3: "it was not necessary to modify LU, as it builds a matrix by
//! allocating sub-blocks, each of size 32×32×|int| = 4 KB. Since the
//! granularity of these sub-blocks is suitable as the sharing unit, the
//! size of a minipage may be set equal to that of a 4 KB page" — hence
//! Table 2's single view.
//!
//! §4.3.1: "in order to minimize the large minipage service delays ... we
//! inserted two prefetch calls during the LU computation": before each
//! interior block update the worker prefetches the pivot-column and
//! pivot-row blocks it will need next, overlapping the fetch with the
//! current block kernel.
//!
//! The factorization is right-looking blocked LU without pivoting on a
//! diagonally dominant matrix; every block kernel runs a fixed arithmetic
//! order, so the parallel result is bitwise equal to the sequential
//! reference.

use crate::{cal, AppRun, TimedAgg};
use millipage::{run, ClusterConfig, HostCtx, SetupCtx, SharedVec};
use sim_core::SplitMix64;

/// LU workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct LuParams {
    /// Matrix dimension (the paper: 1024).
    pub n: usize,
    /// Block dimension (the paper: 32 → 4 KB `f32` blocks).
    pub block: usize,
    /// Workload seed.
    pub seed: u64,
}

impl LuParams {
    /// The paper's input set: 1024×1024, 32×32 blocks.
    pub fn paper() -> Self {
        Self {
            n: 1024,
            block: 32,
            seed: 0x10,
        }
    }

    /// A test-sized instance.
    pub fn small() -> Self {
        Self {
            n: 96,
            block: 16,
            seed: 0x10,
        }
    }

    /// Blocks per dimension.
    pub fn nb(&self) -> usize {
        self.n / self.block
    }
}

/// Deterministic, diagonally dominant input: `A = n·I + noise`.
fn initial(p: LuParams) -> Vec<f32> {
    let mut rng = SplitMix64::new(p.seed);
    let n = p.n;
    let mut a = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            let noise = (rng.next_f64() - 0.5) as f32;
            a[i * n + j] = if i == j { n as f32 } else { noise };
        }
    }
    a
}

/// Extracts block `(bi, bj)` from a row-major matrix (block-contiguous
/// copy-in, like SPLASH's layout transformation).
fn extract_block(a: &[f32], p: LuParams, bi: usize, bj: usize) -> Vec<f32> {
    let (n, b) = (p.n, p.block);
    let mut out = vec![0.0f32; b * b];
    for r in 0..b {
        let src = (bi * b + r) * n + bj * b;
        out[r * b..(r + 1) * b].copy_from_slice(&a[src..src + b]);
    }
    out
}

/// In-place unblocked LU of the diagonal block (fixed order, no pivot).
fn factor_diag(d: &mut [f32], b: usize) {
    for k in 0..b {
        let pivot = d[k * b + k];
        for i in k + 1..b {
            d[i * b + k] /= pivot;
            let l = d[i * b + k];
            for j in k + 1..b {
                d[i * b + j] -= l * d[k * b + j];
            }
        }
    }
}

/// Solves `L·X = A` in place for a block below the diagonal (column
/// panel): `A(i,k) ← A(i,k)·U(k,k)⁻¹`.
fn update_col(blk: &mut [f32], diag: &[f32], b: usize) {
    for i in 0..b {
        for k in 0..b {
            let x = blk[i * b + k] / diag[k * b + k];
            blk[i * b + k] = x;
            for j in k + 1..b {
                blk[i * b + j] -= x * diag[k * b + j];
            }
        }
    }
}

/// Solves for a block right of the diagonal (row panel):
/// `A(k,j) ← L(k,k)⁻¹·A(k,j)` with unit lower-triangular `L`.
fn update_row(blk: &mut [f32], diag: &[f32], b: usize) {
    for k in 0..b {
        for i in k + 1..b {
            let l = diag[i * b + k];
            for j in 0..b {
                blk[i * b + j] -= l * blk[k * b + j];
            }
        }
    }
}

/// Interior update: `A(i,j) -= L(i,k)·U(k,j)`.
fn update_interior(blk: &mut [f32], l: &[f32], u: &[f32], b: usize) {
    for i in 0..b {
        for k in 0..b {
            let x = l[i * b + k];
            if x == 0.0 {
                continue;
            }
            for j in 0..b {
                blk[i * b + j] -= x * u[k * b + j];
            }
        }
    }
}

/// Sequential reference: runs the identical blocked algorithm on plain
/// memory and returns the checksum (sum of the factored matrix).
pub fn reference(p: LuParams) -> f64 {
    let nb = p.nb();
    let b = p.block;
    let a = initial(p);
    let mut blocks: Vec<Vec<f32>> = (0..nb * nb)
        .map(|idx| extract_block(&a, p, idx / nb, idx % nb))
        .collect();
    for k in 0..nb {
        let diag = {
            let d = &mut blocks[k * nb + k];
            factor_diag(d, b);
            d.clone()
        };
        for i in k + 1..nb {
            update_col(&mut blocks[i * nb + k], &diag, b);
            update_row(&mut blocks[k * nb + i], &diag, b);
        }
        for i in k + 1..nb {
            let l = blocks[i * nb + k].clone();
            for j in k + 1..nb {
                let u = blocks[k * nb + j].clone();
                update_interior(&mut blocks[i * nb + j], &l, &u, b);
            }
        }
    }
    blocks
        .iter()
        .flat_map(|bl| bl.iter())
        .map(|&x| x as f64)
        .sum()
}

/// Shared handles: the nb×nb grid of 4 KB blocks.
pub struct LuShared {
    blocks: Vec<SharedVec<f32>>,
    params: LuParams,
}

/// Owner of block `(i, j)`: 2-D scatter, the SPLASH assignment.
fn owner(i: usize, j: usize, nb: usize, hosts: usize) -> usize {
    (i + j * nb) % hosts
}

/// Allocates the matrix block by block (4 KB allocations, view 0 only);
/// block contents are written by their owners in the claim phase.
pub fn setup(s: &mut SetupCtx, p: LuParams) -> LuShared {
    assert_eq!(p.n % p.block, 0, "block must divide n");
    let nb = p.nb();
    let blocks = (0..nb * nb)
        .map(|_| s.alloc_vec(p.block * p.block))
        .collect();
    LuShared { blocks, params: p }
}

/// The per-host program.
pub fn worker(ctx: &mut HostCtx, sh: &LuShared) {
    let p = sh.params;
    let nb = p.nb();
    let b = p.block;
    let bb = b * b;
    let hosts = ctx.hosts();
    let me = ctx.host().index();
    let flops_panel = (bb * b) as u64;
    // Claim phase: every owner initializes its blocks from the
    // deterministic input matrix, then the factorization is timed.
    let a = initial(p);
    for bi in 0..nb {
        for bj in 0..nb {
            if owner(bi, bj, nb, hosts) == me {
                ctx.write_range(&sh.blocks[bi * nb + bj], 0, &extract_block(&a, p, bi, bj));
            }
        }
    }
    drop(a);
    ctx.barrier();
    ctx.timer_reset();
    for k in 0..nb {
        // Factor the diagonal block (its owner only).
        if owner(k, k, nb, hosts) == me {
            let mut d = ctx.read_range(&sh.blocks[k * nb + k], 0..bb);
            factor_diag(&mut d, b);
            ctx.compute(cal::LU_FLOP_NS * flops_panel / 3);
            ctx.write_range(&sh.blocks[k * nb + k], 0, &d);
        }
        ctx.barrier();
        // Perimeter panels.
        let mut diag: Option<Vec<f32>> = None;
        for i in k + 1..nb {
            for (bi, bj, col) in [(i, k, true), (k, i, false)] {
                if owner(bi, bj, nb, hosts) != me {
                    continue;
                }
                let d = diag.get_or_insert_with(|| ctx.read_range(&sh.blocks[k * nb + k], 0..bb));
                let d = d.clone();
                let idx = bi * nb + bj;
                let mut blk = ctx.read_range(&sh.blocks[idx], 0..bb);
                if col {
                    update_col(&mut blk, &d, b);
                } else {
                    update_row(&mut blk, &d, b);
                }
                ctx.compute(cal::LU_FLOP_NS * flops_panel);
                ctx.write_range(&sh.blocks[idx], 0, &blk);
            }
        }
        ctx.barrier();
        // Interior updates: collect my blocks first so the next update's
        // operands can be prefetched while the current kernel runs — the
        // paper's "two prefetch calls" (§4.3.1).
        let mine: Vec<(usize, usize)> = (k + 1..nb)
            .flat_map(|i| (k + 1..nb).map(move |j| (i, j)))
            .filter(|&(i, j)| owner(i, j, nb, hosts) == me)
            .collect();
        if let Some(&(i0, j0)) = mine.first() {
            ctx.prefetch_vec(&sh.blocks[i0 * nb + k]);
            ctx.prefetch_vec(&sh.blocks[k * nb + j0]);
        }
        for (t, &(i, j)) in mine.iter().enumerate() {
            if let Some(&(ni, nj)) = mine.get(t + 1) {
                ctx.prefetch_vec(&sh.blocks[ni * nb + k]);
                ctx.prefetch_vec(&sh.blocks[k * nb + nj]);
            }
            let l = ctx.read_range(&sh.blocks[i * nb + k], 0..bb);
            let u = ctx.read_range(&sh.blocks[k * nb + j], 0..bb);
            let mut blk = ctx.read_range(&sh.blocks[i * nb + j], 0..bb);
            update_interior(&mut blk, &l, &u, b);
            ctx.compute(cal::LU_FLOP_NS * 2 * flops_panel);
            ctx.write_range(&sh.blocks[i * nb + j], 0, &blk);
        }
        ctx.barrier();
    }
}

/// Checksum (host 0, after the final barrier): sum of the factored matrix.
pub fn checksum(ctx: &mut HostCtx, sh: &LuShared) -> f64 {
    let bb = sh.params.block * sh.params.block;
    let mut sum = 0.0f64;
    for blk in &sh.blocks {
        for v in ctx.read_range(blk, 0..bb) {
            sum += v as f64;
        }
    }
    sum
}

/// Runs LU on a cluster configured by `cfg`.
pub fn run_lu(mut cfg: ClusterConfig, p: LuParams) -> AppRun {
    let bytes = p.n * p.n * 4;
    cfg.pages = cfg.pages.max(bytes / 4096 + 128);
    let sum = parking_lot::Mutex::new(0.0f64);
    let timed = TimedAgg::new();
    let report = run(
        cfg,
        |s| setup(s, p),
        |ctx, sh| {
            worker(ctx, sh);
            timed.record(ctx);
            if ctx.host().index() == 0 {
                *sum.lock() = checksum(ctx, sh);
            }
        },
    );
    let (timed_ns, timed_breakdown) = timed.take();
    AppRun {
        report,
        checksum: sum.into_inner(),
        timed_ns,
        timed_breakdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::close;

    fn cfg(hosts: usize) -> ClusterConfig {
        ClusterConfig {
            hosts,
            views: 4,
            pages: 256,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn lu_matches_reference_single_host() {
        let p = LuParams::small();
        let r = run_lu(cfg(1), p);
        assert!(r.report.coherence_violations.is_empty());
        assert!(
            close(r.checksum, reference(p), 1e-9),
            "{} vs {}",
            r.checksum,
            reference(p)
        );
    }

    #[test]
    fn lu_matches_reference_four_hosts() {
        let p = LuParams::small();
        let r = run_lu(cfg(4), p);
        assert!(r.report.coherence_violations.is_empty());
        // Identical per-block arithmetic order: bitwise-equal result.
        assert_eq!(r.checksum, reference(p), "blocked LU must be exact");
    }

    #[test]
    fn lu_factorization_is_correct() {
        // L·U must reproduce the original matrix (small dense check).
        let p = LuParams {
            n: 32,
            block: 16,
            seed: 7,
        };
        let r = run_lu(cfg(2), p);
        assert!(r.report.coherence_violations.is_empty());
        // Reference check: rebuild A from the reference factorization.
        let a = initial(p);
        let nb = p.nb();
        let b = p.block;
        let mut blocks: Vec<Vec<f32>> = (0..nb * nb)
            .map(|idx| extract_block(&a, p, idx / nb, idx % nb))
            .collect();
        for k in 0..nb {
            let diag = {
                let d = &mut blocks[k * nb + k];
                factor_diag(d, b);
                d.clone()
            };
            for i in k + 1..nb {
                update_col(&mut blocks[i * nb + k], &diag, b);
                update_row(&mut blocks[k * nb + i], &diag, b);
            }
            for i in k + 1..nb {
                let l = blocks[i * nb + k].clone();
                for j in k + 1..nb {
                    let u = blocks[k * nb + j].clone();
                    update_interior(&mut blocks[i * nb + j], &l, &u, b);
                }
            }
        }
        // Dense L and U.
        let n = p.n;
        let get = |bi: usize, bj: usize, r: usize, c: usize| blocks[bi * nb + bj][r * b + c];
        let mut prod = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0f64;
                for k in 0..=i.min(j) {
                    let l = if k == i {
                        1.0
                    } else if k < i {
                        get(i / b, k / b, i % b, k % b) as f64
                    } else {
                        0.0
                    };
                    let u = if k <= j {
                        get(k / b, j / b, k % b, j % b) as f64
                    } else {
                        0.0
                    };
                    s += l * u;
                }
                prod[i * n + j] = s;
            }
        }
        for i in 0..n {
            for j in 0..n {
                let want = a[i * n + j] as f64;
                let got = prod[i * n + j];
                assert!(
                    (want - got).abs() < 1e-2,
                    "A[{i}][{j}]: {want} vs L·U {got}"
                );
            }
        }
    }

    #[test]
    fn lu_uses_single_view_and_page_granularity() {
        let p = LuParams {
            n: 64,
            block: 32,
            seed: 3,
        };
        let r = run_lu(cfg(2), p);
        // 32×32 f32 blocks are 4 KB: whole-page minipages in view 0.
        assert_eq!(r.report.alloc.views_used, 1);
        assert_eq!(r.report.alloc.min_granularity, 4096);
        assert_eq!(r.report.alloc.max_granularity, 4096);
    }

    #[test]
    fn lu_issues_prefetches_on_multiple_hosts() {
        let p = LuParams::small();
        let r = run_lu(cfg(4), p);
        assert!(r.report.prefetches > 0, "LU must prefetch pivot panels");
    }

    #[test]
    fn lu_barriers_are_three_per_step() {
        let p = LuParams::small();
        let r = run_lu(cfg(2), p);
        // Three per elimination step plus the initialization barrier.
        assert_eq!(r.report.barriers, 3 * p.nb() as u64 + 1);
    }
}
