//! Real SIGSEGV-driven MultiView tests (Linux only).
//!
//! These tests install a process-wide SIGSEGV handler, so they live in one
//! integration-test binary and serialize on a mutex: the handler itself is
//! thread-safe, but keeping the fault sequences disjoint makes the counter
//! assertions exact.

#![cfg(target_os = "linux")]

use hostmv::{install_handler, FaultCounters, HostProt, MultiViewRegion};
use std::sync::{Arc, Mutex, OnceLock};

static SERIAL: Mutex<()> = Mutex::new(());

fn fixture() -> (&'static Arc<MultiViewRegion>, &'static FaultCounters) {
    static FIX: OnceLock<(Arc<MultiViewRegion>, FaultCounters)> = OnceLock::new();
    let (r, c) = FIX.get_or_init(|| {
        let r = Arc::new(MultiViewRegion::new(8, 3).expect("mmap views"));
        let c = install_handler(Arc::clone(&r)).expect("install handler");
        (r, c)
    });
    (r, c)
}

#[test]
fn read_fault_upgrades_to_readonly() {
    let _g = SERIAL.lock().unwrap();
    let (r, c) = fixture();
    r.priv_write(0, 0, b"A");
    let before = c.read_faults();
    assert_eq!(r.prot(0, 0), HostProt::NoAccess);
    // This load faults; the handler upgrades to ReadOnly and retries.
    assert_eq!(r.read_u8(0, 0, 0), b'A');
    assert_eq!(c.read_faults(), before + 1);
    assert_eq!(r.prot(0, 0), HostProt::ReadOnly);
    // Second read: no further fault.
    assert_eq!(r.read_u8(0, 0, 0), b'A');
    assert_eq!(c.read_faults(), before + 1);
}

#[test]
fn write_fault_upgrades_to_readwrite() {
    let _g = SERIAL.lock().unwrap();
    let (r, c) = fixture();
    let before_w = c.write_faults();
    assert_eq!(r.prot(1, 1), HostProt::NoAccess);
    r.write_u8(1, 1, 5, 42);
    assert_eq!(c.write_faults(), before_w + 1);
    assert_eq!(r.prot(1, 1), HostProt::ReadWrite);
    assert_eq!(r.read_u8(1, 1, 5), 42);
    // The same byte through the privileged view: shared storage.
    assert_eq!(r.priv_read(1, 5, 1), vec![42]);
}

#[test]
fn same_page_different_views_fault_independently() {
    let _g = SERIAL.lock().unwrap();
    let (r, c) = fixture();
    // Page 2 through view 0 and view 1: distinct protections over the
    // same physical page — the MultiView core property, on a real MMU.
    r.priv_write(2, 100, b"xy");
    let before = c.read_faults();
    assert_eq!(r.read_u8(0, 2, 100), b'x'); // Fault + upgrade in view 0.
    assert_eq!(c.read_faults(), before + 1);
    assert_eq!(r.prot(0, 2), HostProt::ReadOnly);
    assert_eq!(r.prot(1, 2), HostProt::NoAccess, "view 1 stays sealed");
    assert_eq!(r.read_u8(1, 2, 101), b'y'); // Independent fault in view 1.
    assert_eq!(c.read_faults(), before + 2);
}

#[test]
fn privileged_updates_while_views_sealed_then_downgrade() {
    let _g = SERIAL.lock().unwrap();
    let (r, c) = fixture();
    // §2.3.1: atomic minipage update in user mode — the server thread
    // writes through the privileged view while application views are
    // sealed, then opens the protection.
    assert_eq!(r.prot(2, 3), HostProt::NoAccess);
    r.priv_write(3, 0, b"update-in-flight");
    r.protect(2, 3, HostProt::ReadOnly).unwrap();
    let before = c.read_faults();
    assert_eq!(r.read_u8(2, 3, 0), b'u');
    assert_eq!(c.read_faults(), before, "no fault after explicit grant");
}

#[test]
fn write_after_read_takes_a_second_fault() {
    let _g = SERIAL.lock().unwrap();
    let (r, c) = fixture();
    let (br, bw) = (c.read_faults(), c.write_faults());
    assert_eq!(r.read_u8(0, 4, 0), 0); // Read fault → ReadOnly.
    r.write_u8(0, 4, 0, 7); // Write fault → ReadWrite.
    assert_eq!(c.read_faults(), br + 1);
    assert_eq!(c.write_faults(), bw + 1);
    assert_eq!(r.read_u8(0, 4, 0), 7);
}

#[test]
fn downgrade_reprotects_for_real() {
    let _g = SERIAL.lock().unwrap();
    let (r, c) = fixture();
    r.write_u8(0, 5, 0, 1); // Upgrade to ReadWrite.
    let bw = c.write_faults();
    // Downgrade (what an invalidation does) and touch again.
    r.protect(0, 5, HostProt::NoAccess).unwrap();
    r.write_u8(0, 5, 0, 2);
    assert_eq!(
        c.write_faults(),
        bw + 1,
        "downgrade made the page fault again"
    );
    assert_eq!(r.priv_read(5, 0, 1), vec![2]);
}

#[test]
fn fault_cost_microbenchmark_smoke() {
    let _g = SERIAL.lock().unwrap();
    let (r, _c) = fixture();
    // Not a benchmark, but exercise a burst: seal page 6 in view 0 and
    // take 50 fault→upgrade→downgrade cycles.
    let t0 = std::time::Instant::now();
    for i in 0..50u8 {
        r.protect(0, 6, HostProt::NoAccess).unwrap();
        r.write_u8(0, 6, 0, i);
    }
    let per = t0.elapsed().as_nanos() / 50;
    // A fault + two mprotects should be microseconds, not milliseconds.
    assert!(per < 5_000_000, "fault cycle took {per} ns");
}
