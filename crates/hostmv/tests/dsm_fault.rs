//! DSM-resolver fault-decoding tests (Linux only).
//!
//! Where `sigsegv.rs` exercises the built-in upgrade ladder, these tests
//! check what a DSM backend actually consumes: the decoded `RawFault`
//! handed to an [`install_dsm_handler`] resolver — correct view, page,
//! offset, and read-vs-write intent from the signal context — plus the
//! two rejection paths: addresses outside any region never decode, and a
//! genuinely unmapped access still crashes instead of being swallowed.
//!
//! The resolver runs in signal context, so it records the fault through
//! static atomics only.

#![cfg(target_os = "linux")]

use hostmv::{install_dsm_handler, HostProt, MultiViewRegion, RawFault};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

static SERIAL: Mutex<()> = Mutex::new(());

// The resolver is a plain `fn` (no captures): the last decoded fault is
// published through statics. `LAST_SEQ` increments once per resolved
// fault so tests can wait for "a new fault arrived".
static LAST_VIEW: AtomicUsize = AtomicUsize::new(usize::MAX);
static LAST_PAGE: AtomicUsize = AtomicUsize::new(usize::MAX);
static LAST_OFFSET: AtomicUsize = AtomicUsize::new(usize::MAX);
static LAST_WRITE: AtomicUsize = AtomicUsize::new(usize::MAX);
static LAST_SEQ: AtomicUsize = AtomicUsize::new(0);

fn recording_resolver(region: &MultiViewRegion, fault: &RawFault, _token: usize) -> bool {
    LAST_VIEW.store(fault.view, Ordering::Relaxed);
    LAST_PAGE.store(fault.page, Ordering::Relaxed);
    LAST_OFFSET.store(fault.offset, Ordering::Relaxed);
    LAST_WRITE.store(fault.write as usize, Ordering::Relaxed);
    LAST_SEQ.fetch_add(1, Ordering::Release);
    // Open the page so the faulting instruction can retry — the same
    // mprotect a real protocol round-trip ends with.
    region
        .protect(fault.view, fault.page, HostProt::ReadWrite)
        .is_ok()
}

fn fixture() -> &'static Arc<MultiViewRegion> {
    static FIX: OnceLock<Arc<MultiViewRegion>> = OnceLock::new();
    FIX.get_or_init(|| {
        let r = Arc::new(MultiViewRegion::new(8, 3).expect("mmap views"));
        install_dsm_handler(Arc::clone(&r), recording_resolver, 0).expect("install handler");
        r
    })
}

fn last() -> (usize, usize, usize, bool) {
    (
        LAST_VIEW.load(Ordering::Relaxed),
        LAST_PAGE.load(Ordering::Relaxed),
        LAST_OFFSET.load(Ordering::Relaxed),
        LAST_WRITE.load(Ordering::Relaxed) == 1,
    )
}

#[test]
fn read_fault_decodes_view_page_offset_and_read_intent() {
    let _g = SERIAL.lock().unwrap();
    let r = fixture();
    r.priv_write(0, 13, b"Z");
    let seq = LAST_SEQ.load(Ordering::Acquire);
    assert_eq!(r.read_u8(1, 0, 13), b'Z');
    assert_eq!(LAST_SEQ.load(Ordering::Acquire), seq + 1);
    assert_eq!(last(), (1, 0, 13, false), "read fault in view 1, page 0");
}

#[test]
fn write_fault_decodes_write_intent() {
    let _g = SERIAL.lock().unwrap();
    let r = fixture();
    let seq = LAST_SEQ.load(Ordering::Acquire);
    r.write_u8(2, 3, 77, 9);
    assert_eq!(LAST_SEQ.load(Ordering::Acquire), seq + 1);
    assert_eq!(last(), (2, 3, 77, true), "write fault in view 2, page 3");
    // The resolver's grant stuck and the store retried.
    assert_eq!(r.priv_read(3, 77, 1), vec![9]);
}

#[test]
fn read_then_write_on_readonly_page_faults_again_as_write() {
    let _g = SERIAL.lock().unwrap();
    let r = fixture();
    // Seal, read (grants ReadWrite via the resolver), downgrade to
    // ReadOnly — the protocol's invalidate-to-shared — then store.
    r.protect(0, 5, HostProt::NoAccess).unwrap();
    let _ = r.read_u8(0, 5, 0);
    r.protect(0, 5, HostProt::ReadOnly).unwrap();
    let seq = LAST_SEQ.load(Ordering::Acquire);
    r.write_u8(0, 5, 4, 3);
    assert_eq!(LAST_SEQ.load(Ordering::Acquire), seq + 1);
    assert_eq!(
        last(),
        (0, 5, 4, true),
        "a store to a ReadOnly page decodes as a write fault"
    );
}

#[test]
fn addresses_outside_the_region_do_not_decode() {
    let r = fixture();
    // In-region addresses decode exactly.
    assert_eq!(r.decode(r.addr(0, 0, 0)), Some((0, 0, 0)));
    assert_eq!(r.decode(r.addr(2, 7, 15)), Some((2, 7, 15)));
    // The privileged view decodes too (the handler crashes on it, but the
    // decode itself must identify it).
    assert_eq!(
        r.decode(r.addr(r.priv_view(), 1, 2)),
        Some((r.priv_view(), 1, 2))
    );
    // A near-null address can never belong to a view (mmap won't place
    // a mapping there); one-past-the-end is NOT tested because the
    // kernel may place another view's mapping adjacently.
    assert_eq!(r.decode(0x10), None);
    // An unrelated heap address never decodes.
    let heap = Box::new(0u8);
    assert_eq!(r.decode(&*heap as *const u8 as usize), None);
}

#[test]
fn unmapped_fault_still_crashes_the_process() {
    let _g = SERIAL.lock().unwrap();
    // Handler installed: it must decline foreign faults.
    fixture();
    // Fork: the child touches an address no region owns; the handler
    // restores SIG_DFL and the child dies of SIGSEGV instead of spinning
    // or corrupting memory. The parent just reaps and checks the signal.
    // SAFETY: the child only executes async-signal-safe code (one load)
    // before dying; the parent only calls waitpid.
    unsafe {
        let pid = libc::fork();
        assert!(pid >= 0, "fork failed");
        if pid == 0 {
            let p = 0x10usize as *const u8;
            std::ptr::read_volatile(p);
            libc::_exit(0); // Unreachable when the crash path works.
        }
        let mut status = 0;
        assert_eq!(libc::waitpid(pid, &mut status, 0), pid);
        assert!(
            libc::WIFSIGNALED(status) && libc::WTERMSIG(status) == libc::SIGSEGV,
            "child should die of SIGSEGV, status {status:#x}"
        );
    }
}
