//! The SIGSEGV-driven access-fault path.
//!
//! The paper's application threads "invoke a wrapper routine that installs
//! the millipage exception handler" (§3.5.1). Here the handler implements
//! the local half of that design: when an access faults inside a
//! registered [`MultiViewRegion`], it decides between read and write
//! intent from the page-fault error code, upgrades the vpage protection
//! (`NoAccess → ReadOnly`, anything → `ReadWrite` on a write), bumps the
//! fault counters, and returns so the instruction retries — exactly the
//! protection-ladder a DSM uses to detect first-read and first-write.
//!
//! Everything in the handler is async-signal-safe: atomics, address
//! arithmetic, and the `mprotect` syscall.

use crate::region::{HostProt, MultiViewRegion};
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Once};

/// Fixed registry capacity: how many regions can be fault-managed at once.
const MAX_REGIONS: usize = 16;

struct Registered {
    region: Arc<MultiViewRegion>,
    reads: AtomicU64,
    writes: AtomicU64,
}

static SLOTS: [AtomicPtr<Registered>; MAX_REGIONS] =
    [const { AtomicPtr::new(std::ptr::null_mut()) }; MAX_REGIONS];
static INSTALL: Once = Once::new();

/// Fault counters of a registered region.
#[derive(Clone)]
pub struct FaultCounters {
    inner: *const Registered,
}

// SAFETY: the pointee is leaked for the process lifetime and only holds
// atomics (plus an Arc<MultiViewRegion> that is itself Sync).
unsafe impl Send for FaultCounters {}
// SAFETY: as above — all access is through atomics.
unsafe impl Sync for FaultCounters {}

impl FaultCounters {
    /// Read faults taken (NoAccess → ReadOnly upgrades).
    pub fn read_faults(&self) -> u64 {
        // SAFETY: `inner` points to a leaked, never-freed Registered.
        unsafe { (*self.inner).reads.load(Ordering::Relaxed) }
    }

    /// Write faults taken (→ ReadWrite upgrades).
    pub fn write_faults(&self) -> u64 {
        // SAFETY: as above.
        unsafe { (*self.inner).writes.load(Ordering::Relaxed) }
    }
}

/// Installs the process-wide SIGSEGV handler (once) and registers
/// `region` with it. Returns the region's fault counters.
///
/// The registration is permanent: the region stays alive (and its slot
/// occupied) for the rest of the process — fault handling and `Drop`
/// cannot race that way. Suitable for tests and long-lived DSM processes;
/// a production system would add epoch-based reclamation.
///
/// # Panics
///
/// Panics when the registry is full.
pub fn install_handler(region: Arc<MultiViewRegion>) -> FaultCounters {
    INSTALL.call_once(|| {
        // SAFETY: installing a SA_SIGINFO handler with an otherwise
        // zeroed sigaction; the handler only uses async-signal-safe
        // operations.
        unsafe {
            let mut sa: libc::sigaction = std::mem::zeroed();
            let f: extern "C" fn(libc::c_int, *mut libc::siginfo_t, *mut libc::c_void) = handler;
            sa.sa_sigaction = f as usize;
            sa.sa_flags = libc::SA_SIGINFO;
            libc::sigemptyset(&mut sa.sa_mask);
            assert_eq!(
                libc::sigaction(libc::SIGSEGV, &sa, std::ptr::null_mut()),
                0,
                "sigaction(SIGSEGV) failed"
            );
        }
    });
    let entry = Box::leak(Box::new(Registered {
        region,
        reads: AtomicU64::new(0),
        writes: AtomicU64::new(0),
    }));
    for slot in &SLOTS {
        if slot
            .compare_exchange(
                std::ptr::null_mut(),
                entry,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            return FaultCounters { inner: entry };
        }
    }
    panic!("fault-handler registry full ({MAX_REGIONS} regions)");
}

/// x86-64 page-fault error-code bit 1: set for writes.
#[cfg(target_arch = "x86_64")]
fn is_write_fault(ctx: *mut libc::c_void) -> bool {
    // SAFETY: the kernel hands SA_SIGINFO handlers a valid ucontext_t.
    let uc = unsafe { &*(ctx as *const libc::ucontext_t) };
    let err = uc.uc_mcontext.gregs[libc::REG_ERR as usize];
    err & 0x2 != 0
}

/// Fallback for other architectures: assume write (the stronger upgrade).
#[cfg(not(target_arch = "x86_64"))]
fn is_write_fault(_ctx: *mut libc::c_void) -> bool {
    true
}

extern "C" fn handler(_sig: libc::c_int, info: *mut libc::siginfo_t, ctx: *mut libc::c_void) {
    // SAFETY: the kernel provides a valid siginfo for SIGSEGV.
    let addr = unsafe { (*info).si_addr() } as usize;
    for slot in &SLOTS {
        let p = slot.load(Ordering::Acquire);
        if p.is_null() {
            continue;
        }
        // SAFETY: non-null slots point to leaked Registered entries.
        let reg = unsafe { &*p };
        let Some((view, page, _off)) = reg.region.decode(addr) else {
            continue;
        };
        if view == reg.region.priv_view() {
            break; // Privileged view never faults legitimately: crash.
        }
        let write = is_write_fault(ctx);
        let new = if write {
            reg.writes.fetch_add(1, Ordering::Relaxed);
            HostProt::ReadWrite
        } else {
            reg.reads.fetch_add(1, Ordering::Relaxed);
            HostProt::ReadOnly
        };
        if reg.region.protect_raw(view, page, new).is_ok() {
            return; // Retry the faulting instruction.
        }
        break;
    }
    // Not one of ours (or upgrade failed): restore the default action and
    // let the fault kill the process with a proper core.
    // SAFETY: resetting a signal disposition is async-signal-safe.
    unsafe {
        libc::signal(libc::SIGSEGV, libc::SIG_DFL);
    }
}
