//! The SIGSEGV-driven access-fault path.
//!
//! The paper's application threads "invoke a wrapper routine that installs
//! the millipage exception handler" (§3.5.1). Here the handler implements
//! the local half of that design: when an access faults inside a
//! registered [`MultiViewRegion`], it decides between read and write
//! intent from the page-fault error code and either
//!
//! * runs the built-in **upgrade ladder** (`NoAccess → ReadOnly`,
//!   anything → `ReadWrite` on a write) — [`install_handler`], the
//!   standalone mechanism demo — or
//! * hands the decoded fault to a **DSM resolver** —
//!   [`install_dsm_handler`] — which runs the coherence protocol (send a
//!   request, block on the reply, let the server thread open the
//!   protection) and reports whether the faulting instruction may retry.
//!
//! # Async-signal-safety
//!
//! The handler runs on the faulting thread with no guarantees about what
//! locks the rest of the process holds, so everything on the handler path
//! must be async-signal-safe (POSIX 2017, XSH 2.4.3):
//!
//! * registry scan: `AtomicPtr` loads and address arithmetic — safe;
//! * fault decoding: pointer compares on leaked, immutable region metadata
//!   — safe;
//! * the upgrade ladder: one `mprotect` syscall + one atomic store
//!   ([`MultiViewRegion::protect_raw`]) — both listed as signal-safe;
//! * counters: relaxed atomic increments — safe;
//! * a DSM resolver is a plain `fn` pointer the *embedder* promises keeps
//!   the same discipline: syscalls (`send`/`recv` on a socketpair are
//!   async-signal-safe), atomics, and thread-locals that were initialized
//!   before the first fault (const-initialized TLS takes no lazy path).
//!   No allocation, no mutexes, no `println!`.
//! * resolver-side diagnostics (the embedder's sharing-stats table): the
//!   same discipline holds because the table is pre-allocated and leaked
//!   before the run, recording is relaxed atomic RMWs on fixed cells
//!   (`fetch_add`/`fetch_min`/`fetch_max` are lock-free on x86-64), and
//!   fault→minipage attribution is an index into a pre-built immutable
//!   map — no hashing, no allocation, no locks.
//!
//! Nothing here allocates, takes a lock, or calls into libc beyond
//! signal-safe entry points; registration (the only allocating step)
//! happens in normal context before any fault can hit the slot.

use crate::error::HostMvError;
use crate::region::{HostProt, MultiViewRegion};
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Once};

/// Fixed registry capacity: how many regions can be fault-managed at once.
/// Registrations are permanent (slots are never reclaimed), so this bounds
/// the number of regions a process can ever create — a DSM run registers
/// one region per simulated host, so dozens of runs fit in one process.
const MAX_REGIONS: usize = 64;

/// One access fault, decoded against its region: which application view
/// and page faulted, where in the page, and whether the access was a
/// write (x86-64 page-fault error-code bit 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawFault {
    /// Application view index.
    pub view: usize,
    /// Page index within the view.
    pub page: usize,
    /// Byte offset within the page.
    pub offset: usize,
    /// Whether the faulting access was a write.
    pub write: bool,
}

/// A DSM fault resolver: runs the coherence protocol for one decoded
/// fault and returns whether the faulting instruction may retry (the
/// protection has been opened). Returning `false` reinstates the default
/// SIGSEGV action — the process crashes with a core, which is what an
/// unresolvable fault deserves.
///
/// The resolver executes in signal context; it must stick to
/// async-signal-safe operations (see the module docs). `token` is the
/// opaque word passed to [`install_dsm_handler`] — typically a leaked
/// runtime pointer, since the resolver is a plain `fn` and cannot capture.
pub type FaultResolver = fn(region: &MultiViewRegion, fault: &RawFault, token: usize) -> bool;

struct Registered {
    region: Arc<MultiViewRegion>,
    reads: AtomicU64,
    writes: AtomicU64,
    /// DSM resolver + token, or `None` for the built-in upgrade ladder.
    resolver: Option<(FaultResolver, usize)>,
}

static SLOTS: [AtomicPtr<Registered>; MAX_REGIONS] =
    [const { AtomicPtr::new(std::ptr::null_mut()) }; MAX_REGIONS];
static INSTALL: Once = Once::new();

/// Fault counters of a registered region.
#[derive(Clone)]
pub struct FaultCounters {
    inner: *const Registered,
}

// SAFETY: the pointee is leaked for the process lifetime and only holds
// atomics (plus an Arc<MultiViewRegion> that is itself Sync).
unsafe impl Send for FaultCounters {}
// SAFETY: as above — all access is through atomics.
unsafe impl Sync for FaultCounters {}

impl FaultCounters {
    /// Read faults taken (NoAccess → ReadOnly upgrades, or read faults
    /// handed to the DSM resolver).
    pub fn read_faults(&self) -> u64 {
        // SAFETY: `inner` points to a leaked, never-freed Registered.
        unsafe { (*self.inner).reads.load(Ordering::Relaxed) }
    }

    /// Write faults taken (→ ReadWrite upgrades, or write faults handed
    /// to the DSM resolver).
    pub fn write_faults(&self) -> u64 {
        // SAFETY: as above.
        unsafe { (*self.inner).writes.load(Ordering::Relaxed) }
    }
}

/// Installs the process-wide SIGSEGV handler (once) and registers
/// `region` with the built-in protection-upgrade ladder. Returns the
/// region's fault counters.
///
/// The registration is permanent: the region stays alive (and its slot
/// occupied) for the rest of the process — fault handling and `Drop`
/// cannot race that way. Suitable for tests and long-lived DSM processes;
/// a production system would add epoch-based reclamation.
pub fn install_handler(region: Arc<MultiViewRegion>) -> Result<FaultCounters, HostMvError> {
    register(region, None)
}

/// Installs the process-wide SIGSEGV handler (once) and registers
/// `region` with a DSM fault resolver: every access fault in the region
/// is decoded into a [`RawFault`] and handed to `resolver` together with
/// `token` instead of the built-in upgrade ladder. Faults on the
/// privileged view still crash (it is always writable; such a fault means
/// the mapping is gone).
pub fn install_dsm_handler(
    region: Arc<MultiViewRegion>,
    resolver: FaultResolver,
    token: usize,
) -> Result<FaultCounters, HostMvError> {
    register(region, Some((resolver, token)))
}

fn register(
    region: Arc<MultiViewRegion>,
    resolver: Option<(FaultResolver, usize)>,
) -> Result<FaultCounters, HostMvError> {
    let mut install_err = None;
    INSTALL.call_once(|| {
        // SAFETY: installing a SA_SIGINFO handler with an otherwise
        // zeroed sigaction; the handler only uses async-signal-safe
        // operations.
        unsafe {
            let mut sa: libc::sigaction = std::mem::zeroed();
            let f: extern "C" fn(libc::c_int, *mut libc::siginfo_t, *mut libc::c_void) = handler;
            sa.sa_sigaction = f as usize;
            sa.sa_flags = libc::SA_SIGINFO;
            libc::sigemptyset(&mut sa.sa_mask);
            if libc::sigaction(libc::SIGSEGV, &sa, std::ptr::null_mut()) != 0 {
                install_err = Some(HostMvError::last_os("sigaction"));
            }
        }
    });
    if let Some(e) = install_err {
        return Err(e);
    }
    let entry = Box::leak(Box::new(Registered {
        region,
        reads: AtomicU64::new(0),
        writes: AtomicU64::new(0),
        resolver,
    }));
    for slot in &SLOTS {
        if slot
            .compare_exchange(
                std::ptr::null_mut(),
                entry,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            return Ok(FaultCounters { inner: entry });
        }
    }
    Err(HostMvError::RegistryFull {
        capacity: MAX_REGIONS,
    })
}

/// x86-64 page-fault error-code bit 1: set for writes.
#[cfg(target_arch = "x86_64")]
fn is_write_fault(ctx: *mut libc::c_void) -> bool {
    // SAFETY: the kernel hands SA_SIGINFO handlers a valid ucontext_t.
    let uc = unsafe { &*(ctx as *const libc::ucontext_t) };
    let err = uc.uc_mcontext.gregs[libc::REG_ERR as usize];
    err & 0x2 != 0
}

/// Fallback for other architectures: assume write (the stronger upgrade).
#[cfg(not(target_arch = "x86_64"))]
fn is_write_fault(_ctx: *mut libc::c_void) -> bool {
    true
}

extern "C" fn handler(_sig: libc::c_int, info: *mut libc::siginfo_t, ctx: *mut libc::c_void) {
    // SAFETY: the kernel provides a valid siginfo for SIGSEGV.
    let addr = unsafe { (*info).si_addr() } as usize;
    for slot in &SLOTS {
        let p = slot.load(Ordering::Acquire);
        if p.is_null() {
            continue;
        }
        // SAFETY: non-null slots point to leaked Registered entries.
        let reg = unsafe { &*p };
        let Some((view, page, offset)) = reg.region.decode(addr) else {
            continue;
        };
        if view == reg.region.priv_view() {
            break; // Privileged view never faults legitimately: crash.
        }
        let write = is_write_fault(ctx);
        if write {
            reg.writes.fetch_add(1, Ordering::Relaxed);
        } else {
            reg.reads.fetch_add(1, Ordering::Relaxed);
        }
        if let Some((resolve, token)) = reg.resolver {
            let fault = RawFault {
                view,
                page,
                offset,
                write,
            };
            if resolve(&reg.region, &fault, token) {
                return; // Protocol opened the page: retry the instruction.
            }
            break;
        }
        let new = if write {
            HostProt::ReadWrite
        } else {
            HostProt::ReadOnly
        };
        if reg.region.protect_raw(view, page, new).is_ok() {
            return; // Retry the faulting instruction.
        }
        break;
    }
    // Not one of ours (or upgrade failed): restore the default action and
    // let the fault kill the process with a proper core.
    // SAFETY: resetting a signal disposition is async-signal-safe.
    unsafe {
        libc::signal(libc::SIGSEGV, libc::SIG_DFL);
    }
}
