//! Typed errors for the real-memory MultiView layer.
//!
//! The mapping syscalls (`memfd_create`, `ftruncate`, `mmap`, `mprotect`,
//! `sigaction`) used to surface as `io::Error` or panics; a DSM backend
//! needs to route them into its protocol error channel instead, so every
//! failure here carries what operation failed and why.

use std::fmt;

/// What went wrong while manipulating a [`MultiViewRegion`] or the
/// process-wide fault handler.
///
/// [`MultiViewRegion`]: crate::MultiViewRegion
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostMvError {
    /// A syscall failed; `op` names it and `errno` is the OS error code.
    Sys { op: &'static str, errno: i32 },
    /// The fixed-capacity fault-handler registry has no free slot.
    RegistryFull { capacity: usize },
    /// The caller named a view or page the operation cannot target
    /// (privileged view, out-of-range page).
    BadTarget { what: &'static str },
}

impl HostMvError {
    /// Captures `errno` for a failed syscall named `op`.
    pub(crate) fn last_os(op: &'static str) -> Self {
        HostMvError::Sys {
            op,
            errno: std::io::Error::last_os_error().raw_os_error().unwrap_or(0),
        }
    }
}

impl fmt::Display for HostMvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostMvError::Sys { op, errno } => {
                let e = std::io::Error::from_raw_os_error(*errno);
                write!(f, "{op} failed: {e}")
            }
            HostMvError::RegistryFull { capacity } => {
                write!(f, "fault-handler registry full ({capacity} regions)")
            }
            HostMvError::BadTarget { what } => write!(f, "bad target: {what}"),
        }
    }
}

impl std::error::Error for HostMvError {}
