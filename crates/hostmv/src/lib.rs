//! Real-OS MultiView (§2.4 of the paper), on Linux.
//!
//! The paper implements MultiView on Windows NT with `CreateFileMapping` +
//! `MapViewOfFile` + `VirtualProtect` and a user-level exception handler.
//! This crate performs the identical trick with the POSIX equivalents:
//!
//! * `memfd_create` — the memory object backed by anonymous memory,
//! * N+1 `mmap(MAP_SHARED)` calls over the same fd — the views (the last
//!   one left permanently `PROT_READ|PROT_WRITE`: the privileged view),
//! * `mprotect` — independent per-vpage protection within each view,
//! * a `SIGSEGV` handler — the access-fault hook that a DSM uses to run
//!   its coherence protocol; here it implements the protection-upgrade
//!   ladder (`NoAccess → ReadOnly → ReadWrite`) and counts faults.
//!
//! The crate demonstrates that MultiView is a real mechanism, not a
//! simulation artifact: the same physical byte is covered by different
//! protections through different views, a store through one view faults
//! while a load through another proceeds, and the privileged view updates
//! memory while application views are sealed. The simulated DSM in the
//! `millipage` crate builds on exactly these semantics.
//!
//! Non-Linux targets get an empty crate.

#[cfg(target_os = "linux")]
mod error;
#[cfg(target_os = "linux")]
mod fault;
#[cfg(target_os = "linux")]
mod region;

#[cfg(target_os = "linux")]
pub use error::HostMvError;
#[cfg(target_os = "linux")]
pub use fault::{install_dsm_handler, install_handler, FaultCounters, FaultResolver, RawFault};
#[cfg(target_os = "linux")]
pub use region::{HostProt, MultiViewRegion};
