//! The multi-view mapping: one memfd, many views, per-vpage protection.

use crate::error::HostMvError;
use std::ptr;
use std::sync::atomic::{AtomicU8, Ordering};

/// Protection of one vpage, mirroring the paper's three states.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum HostProt {
    /// `PROT_NONE`.
    NoAccess = 0,
    /// `PROT_READ`.
    ReadOnly = 1,
    /// `PROT_READ | PROT_WRITE`.
    ReadWrite = 2,
}

impl HostProt {
    fn to_prot_flags(self) -> libc::c_int {
        match self {
            HostProt::NoAccess => libc::PROT_NONE,
            HostProt::ReadOnly => libc::PROT_READ,
            HostProt::ReadWrite => libc::PROT_READ | libc::PROT_WRITE,
        }
    }
}

/// One memory object mapped through `views + 1` views (§2.4): application
/// views 0..views with mutable per-vpage protection, plus a privileged
/// view fixed at read-write.
///
/// Dropping the region unmaps every view and closes the memfd. Regions
/// registered with the fault handler must live as long as the handler can
/// see them (the registry holds them alive via `Arc`).
pub struct MultiViewRegion {
    fd: libc::c_int,
    page_size: usize,
    pages: usize,
    views: usize,
    /// Base pointer of each view (len = views + 1).
    bases: Vec<usize>,
    /// Shadow protections, vpage-indexed (`view * pages + page`), kept for
    /// the fault handler's upgrade decision. Only meaningful for
    /// application views.
    prots: Vec<AtomicU8>,
}

// SAFETY: the raw base addresses are plain integers; all mutation of the
// mapping goes through the kernel (`mprotect`) or atomics. Cross-thread
// data access through the mapping carries the same aliasing obligations as
// any shared memory and is mediated by volatile accessors.
unsafe impl Send for MultiViewRegion {}
// SAFETY: see above — interior mutability is via atomics and syscalls.
unsafe impl Sync for MultiViewRegion {}

impl MultiViewRegion {
    /// Creates a memory object of `pages` pages mapped through `views`
    /// application views plus the privileged view.
    ///
    /// Application views start `NoAccess`; the privileged view is
    /// read-write forever.
    pub fn new(pages: usize, views: usize) -> Result<MultiViewRegion, HostMvError> {
        if pages == 0 || views == 0 {
            return Err(HostMvError::BadTarget {
                what: "degenerate region (zero pages or views)",
            });
        }
        // SAFETY: sysconf is always safe to call.
        let page_size = unsafe { libc::sysconf(libc::_SC_PAGESIZE) } as usize;
        let bytes = pages * page_size;
        // SAFETY: memfd_create with a static name; the fd is owned below.
        let fd = unsafe {
            libc::syscall(
                libc::SYS_memfd_create,
                c"multiview".as_ptr(),
                libc::MFD_CLOEXEC as libc::c_ulong,
            )
        } as libc::c_int;
        if fd < 0 {
            return Err(HostMvError::last_os("memfd_create"));
        }
        // SAFETY: freshly created fd, sized before any mapping exists.
        if unsafe { libc::ftruncate(fd, bytes as libc::off_t) } != 0 {
            let e = HostMvError::last_os("ftruncate");
            // SAFETY: fd was created above and is not yet shared.
            unsafe { libc::close(fd) };
            return Err(e);
        }
        let mut bases = Vec::with_capacity(views + 1);
        for view in 0..=views {
            let prot = if view == views {
                libc::PROT_READ | libc::PROT_WRITE
            } else {
                libc::PROT_NONE
            };
            // SAFETY: mapping a valid fd with kernel-chosen placement;
            // len > 0; offset 0. MAP_SHARED makes every view window the
            // same physical pages — the MultiView property.
            let p = unsafe { libc::mmap(ptr::null_mut(), bytes, prot, libc::MAP_SHARED, fd, 0) };
            if p == libc::MAP_FAILED {
                let e = HostMvError::last_os("mmap");
                for &b in &bases {
                    // SAFETY: unmapping regions this constructor mapped.
                    unsafe { libc::munmap(b as *mut libc::c_void, bytes) };
                }
                // SAFETY: fd owned by this constructor.
                unsafe { libc::close(fd) };
                return Err(e);
            }
            bases.push(p as usize);
        }
        let prots = (0..(views + 1) * pages)
            .map(|i| {
                let v = if i / pages == views {
                    HostProt::ReadWrite
                } else {
                    HostProt::NoAccess
                };
                AtomicU8::new(v as u8)
            })
            .collect();
        Ok(MultiViewRegion {
            fd,
            page_size,
            pages,
            views,
            bases,
            prots,
        })
    }

    /// System page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Pages in the memory object.
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Application view count.
    pub fn views(&self) -> usize {
        self.views
    }

    /// Index of the privileged view.
    pub fn priv_view(&self) -> usize {
        self.views
    }

    /// Address of `(view, page, offset)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn addr(&self, view: usize, page: usize, offset: usize) -> usize {
        assert!(view <= self.views && page < self.pages && offset < self.page_size);
        self.bases[view] + page * self.page_size + offset
    }

    /// Decodes an address within the region to `(view, page, offset)`.
    pub fn decode(&self, addr: usize) -> Option<(usize, usize, usize)> {
        let bytes = self.pages * self.page_size;
        for (view, &base) in self.bases.iter().enumerate() {
            if addr >= base && addr < base + bytes {
                let off = addr - base;
                return Some((view, off / self.page_size, off % self.page_size));
            }
        }
        None
    }

    /// Shadow protection of a vpage.
    pub fn prot(&self, view: usize, page: usize) -> HostProt {
        match self.prots[view * self.pages + page].load(Ordering::Acquire) {
            0 => HostProt::NoAccess,
            1 => HostProt::ReadOnly,
            _ => HostProt::ReadWrite,
        }
    }

    /// Sets the real protection of one vpage of one application view.
    ///
    /// Targeting the privileged view (its protection is fixed) or an
    /// out-of-range page is a [`HostMvError::BadTarget`].
    pub fn protect(&self, view: usize, page: usize, prot: HostProt) -> Result<(), HostMvError> {
        if view >= self.views {
            return Err(HostMvError::BadTarget {
                what: "privileged view protection is fixed",
            });
        }
        if page >= self.pages {
            return Err(HostMvError::BadTarget {
                what: "page out of range",
            });
        }
        self.protect_raw(view, page, prot)
    }

    /// `mprotect` + shadow update; used by both [`protect`] and the
    /// SIGSEGV handler (async-signal-safe: one syscall + one atomic).
    ///
    /// [`protect`]: MultiViewRegion::protect
    pub(crate) fn protect_raw(
        &self,
        view: usize,
        page: usize,
        prot: HostProt,
    ) -> Result<(), HostMvError> {
        let addr = self.bases[view] + page * self.page_size;
        // SAFETY: addr/page_size describe one page of a mapping this
        // region owns; changing its protection cannot create memory
        // unsafety by itself (accesses are checked by the MMU).
        let rc = unsafe {
            libc::mprotect(
                addr as *mut libc::c_void,
                self.page_size,
                prot.to_prot_flags(),
            )
        };
        if rc != 0 {
            return Err(HostMvError::last_os("mprotect"));
        }
        self.prots[view * self.pages + page].store(prot as u8, Ordering::Release);
        Ok(())
    }

    /// Volatile read of one byte through a view. May raise SIGSEGV when
    /// the vpage protection forbids reads — which is the mechanism under
    /// test; install the fault handler first.
    pub fn read_u8(&self, view: usize, page: usize, offset: usize) -> u8 {
        let a = self.addr(view, page, offset) as *const u8;
        // SAFETY: `a` lies inside a live mapping of this region; volatile
        // keeps the access an actual load (the MMU check is the point).
        unsafe { ptr::read_volatile(a) }
    }

    /// Volatile write of one byte through a view (may raise SIGSEGV, as
    /// above).
    pub fn write_u8(&self, view: usize, page: usize, offset: usize, v: u8) {
        let a = self.addr(view, page, offset) as *mut u8;
        // SAFETY: in-bounds address of a live MAP_SHARED mapping; races
        // on the shared bytes are defused by volatile byte-sized accesses.
        unsafe { ptr::write_volatile(a, v) }
    }

    /// Copies `data` into the region through the privileged view — the
    /// paper's zero-copy receive path (works regardless of application
    /// view protections).
    pub fn priv_write(&self, page: usize, offset: usize, data: &[u8]) {
        assert!(offset + data.len() <= (self.pages - page) * self.page_size);
        let a = self.addr(self.priv_view(), page, offset) as *mut u8;
        // SAFETY: bounds asserted above; the privileged view is always
        // PROT_READ|PROT_WRITE.
        unsafe { ptr::copy_nonoverlapping(data.as_ptr(), a, data.len()) }
    }

    /// Reads `len` bytes through the privileged view.
    pub fn priv_read(&self, page: usize, offset: usize, len: usize) -> Vec<u8> {
        assert!(offset + len <= (self.pages - page) * self.page_size);
        let a = self.addr(self.priv_view(), page, offset) as *const u8;
        let mut out = vec![0u8; len];
        // SAFETY: bounds asserted; privileged view always readable.
        unsafe { ptr::copy_nonoverlapping(a, out.as_mut_ptr(), len) }
        out
    }

    /// Whether `addr` falls inside any view of this region.
    pub fn contains(&self, addr: usize) -> bool {
        self.decode(addr).is_some()
    }
}

impl Drop for MultiViewRegion {
    fn drop(&mut self) {
        let bytes = self.pages * self.page_size;
        for &b in &self.bases {
            // SAFETY: unmapping mappings this region created and owns.
            unsafe { libc::munmap(b as *mut libc::c_void, bytes) };
        }
        // SAFETY: closing the fd this region created and owns.
        unsafe { libc::close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_share_physical_storage() {
        let r = MultiViewRegion::new(2, 3).unwrap();
        r.priv_write(0, 10, b"shared!");
        // Open view 1 for reading and observe the privileged write.
        r.protect(1, 0, HostProt::ReadOnly).unwrap();
        assert_eq!(r.read_u8(1, 0, 10), b's');
        assert_eq!(r.read_u8(1, 0, 16), b'!');
        // Write through view 2 after opening it; visible in view 1.
        r.protect(2, 0, HostProt::ReadWrite).unwrap();
        r.write_u8(2, 0, 10, b'S');
        assert_eq!(r.read_u8(1, 0, 10), b'S');
        assert_eq!(r.priv_read(0, 10, 7), b"Shared!");
    }

    #[test]
    fn per_view_protection_is_independent() {
        let r = MultiViewRegion::new(1, 2).unwrap();
        r.protect(0, 0, HostProt::ReadWrite).unwrap();
        assert_eq!(r.prot(0, 0), HostProt::ReadWrite);
        assert_eq!(r.prot(1, 0), HostProt::NoAccess);
        assert_eq!(r.prot(r.priv_view(), 0), HostProt::ReadWrite);
    }

    #[test]
    fn decode_roundtrips() {
        let r = MultiViewRegion::new(4, 2).unwrap();
        let a = r.addr(1, 3, 17);
        assert_eq!(r.decode(a), Some((1, 3, 17)));
        assert!(r.contains(a));
        assert!(!r.contains(0x10));
    }

    #[test]
    fn privileged_protection_is_a_typed_error() {
        let r = MultiViewRegion::new(1, 1).unwrap();
        assert_eq!(
            r.protect(1, 0, HostProt::NoAccess),
            Err(HostMvError::BadTarget {
                what: "privileged view protection is fixed"
            })
        );
        assert!(matches!(
            r.protect(0, 9, HostProt::NoAccess),
            Err(HostMvError::BadTarget { .. })
        ));
        assert!(matches!(
            MultiViewRegion::new(0, 1),
            Err(HostMvError::BadTarget { .. })
        ));
    }
}
