//! Property-based tests over the core data structures and the cluster.

use millipage::diff::Diff;
use millipage::{run, AllocMode, ClusterConfig, CostModel, Pod};
use multiview::{AllocMode as MvMode, Allocator};
use parking_lot::Mutex;
use proptest::prelude::*;
use sim_mem::Geometry;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Diff/apply is an identity: applying the diff of (twin → current)
    /// to the twin reproduces current, for arbitrary buffers.
    #[test]
    fn diff_apply_roundtrip(twin in proptest::collection::vec(any::<u8>(), 1..2048)) {
        let mut current = twin.clone();
        // Mutate a pseudo-random subset.
        for (i, b) in current.iter_mut().enumerate() {
            if i % 7 == 3 || i % 31 == 0 {
                *b = b.wrapping_add(13);
            }
        }
        let d = Diff::compute(&twin, &current);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        prop_assert_eq!(rebuilt, current.clone());
        prop_assert!(d.changed_bytes() <= current.len());
        prop_assert!(d.wire_bytes() >= d.changed_bytes());
    }

    /// The dynamic-layout allocator never double-books: every vpage hosts
    /// at most one minipage (enforced), every allocation stays inside its
    /// minipage, and the view budget is respected.
    #[test]
    fn allocator_geometry_invariants(
        sizes in proptest::collection::vec(1usize..6000, 1..120),
        views in 1usize..32,
        chunking in 1usize..7,
    ) {
        let geo = Geometry::new(512, views);
        let mut a = Allocator::new(geo.clone(), MvMode::FineGrain { chunking });
        for &size in &sizes {
            let Ok((addr, id)) = a.alloc_traced(size) else {
                break; // Out of memory is a legal outcome.
            };
            let mp = a.mpt().get(id);
            // The allocation's bytes sit inside the minipage.
            prop_assert!(mp.contains(&geo, addr));
            prop_assert!(mp.contains(&geo, addr.add(size - 1)));
            prop_assert!(mp.view < views || mp.view == 0);
        }
        prop_assert!(a.stats().views_used <= views);
        // Re-translate every minipage from its base: identity.
        for mp in a.mpt().iter() {
            let hit = a.mpt().translate(&geo, mp.base).expect("translates");
            prop_assert_eq!(hit.id, mp.id);
        }
    }

    /// Page-grain allocation covers every allocated byte with exactly one
    /// whole-page minipage.
    #[test]
    fn page_grain_covers_allocations(
        sizes in proptest::collection::vec(1usize..9000, 1..60),
    ) {
        let geo = Geometry::new(256, 4);
        let mut a = Allocator::new(geo.clone(), MvMode::PageGrain);
        for &size in &sizes {
            let Ok(addr) = a.alloc(size) else { break };
            for probe in [0, size / 2, size - 1] {
                let mp = a.mpt().translate(&geo, addr.add(probe));
                prop_assert!(mp.is_some(), "byte {probe} of {size} uncovered");
                prop_assert_eq!(mp.expect("covered").len, geo.page_size());
            }
        }
    }

    /// Pod encode/decode is an identity for every primitive value.
    #[test]
    fn pod_roundtrip(x in any::<f64>(), y in any::<i64>(), z in any::<u32>()) {
        let mut b8 = [0u8; 8];
        x.to_bytes(&mut b8);
        let x2 = f64::from_bytes(&b8);
        prop_assert!(x2 == x || (x.is_nan() && x2.is_nan()));
        y.to_bytes(&mut b8);
        prop_assert_eq!(i64::from_bytes(&b8), y);
        let mut b4 = [0u8; 4];
        z.to_bytes(&mut b4);
        prop_assert_eq!(u32::from_bytes(&b4), z);
    }

    /// Geometry address arithmetic: decode inverts addr_of everywhere.
    #[test]
    fn geometry_roundtrip(
        pages in 1usize..64,
        views in 1usize..16,
        page_sel in any::<u64>(),
        view_sel in any::<u64>(),
        off_sel in any::<u64>(),
    ) {
        let geo = Geometry::new(pages, views);
        let view = (view_sel % geo.total_views() as u64) as usize;
        let page = (page_sel % pages as u64) as usize;
        let off = (off_sel % geo.page_size() as u64) as usize;
        let a = geo.addr_of(view, page, off);
        let loc = geo.decode(a).expect("in range");
        prop_assert_eq!((loc.view, loc.page, loc.offset), (view, page, off));
        prop_assert_eq!(geo.vpage_of(a), Some(geo.vpage_index(view, page)));
    }
}

proptest! {
    // Cluster-spawning properties are expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Barrier-paced random programs behave like a single shared memory:
    /// a scripted sequence of (host, cell, value) writes with barriers
    /// between steps reads back exactly like a flat array.
    #[test]
    fn barrier_paced_program_equals_flat_memory(
        script in proptest::collection::vec(
            (0usize..4, 0usize..6, any::<u32>()),
            1..24,
        ),
        page_grain in any::<bool>(),
    ) {
        let mode = if page_grain { AllocMode::PageGrain } else { AllocMode::FINE };
        let cfg = ClusterConfig {
            hosts: 4,
            views: 8,
            pages: 64,
            cost: CostModel::default(),
            alloc_mode: mode,
            seed: 5,
            ..ClusterConfig::default()
        };
        // The reference model: a plain array receiving the same writes.
        let mut model = [0u32; 6];
        for &(_, cell, val) in &script {
            model[cell] = val;
        }
        let script_ref = &script;
        let mismatch = Mutex::new(None);
        let report = run(
            cfg,
            |s| (0..6).map(|_| s.alloc_cell_init::<u32>(0)).collect::<Vec<_>>(),
            |ctx, cells| {
                for &(writer, cell, val) in script_ref {
                    if ctx.host().index() == writer {
                        ctx.cell_set(&cells[cell], val);
                    }
                    ctx.barrier();
                }
                // Every host verifies the whole memory.
                for (i, c) in cells.iter().enumerate() {
                    let got = ctx.cell_get(c);
                    let want = {
                        let mut m = [0u32; 6];
                        for &(_, cl, v) in script_ref {
                            m[cl] = v;
                        }
                        m[i]
                    };
                    if got != want {
                        *mismatch.lock() = Some((ctx.host(), i, got, want));
                    }
                }
                ctx.barrier();
            },
        );
        prop_assert!(report.coherence_violations.is_empty());
        let m = mismatch.into_inner();
        prop_assert!(m.is_none(), "mismatch: {m:?}, model {model:?}");
    }
}
