//! End-to-end tests of the real-memory (hostmv) backend: the same
//! protocol core the simulator runs, on real `mmap`ed pages behind a real
//! SIGSEGV handler, with the ported benchmarks checked against both the
//! sequential reference and the simulator's checksum.
#![cfg(target_os = "linux")]

use millipage::{AllocMode, ClusterConfig};
use millipage_apps::close;
use millipage_apps::is::{self, IsParams};
use millipage_apps::sor::{self, SorParams};

#[test]
fn sor_runs_on_real_memory_and_matches_the_simulator() {
    let p = SorParams::small();
    let host = sor::run_sor_host(2, p).expect("host run");
    // Same numerics as the sequential reference…
    assert!(
        close(host.checksum, sor::reference(p), 1e-6),
        "host {} vs reference {}",
        host.checksum,
        sor::reference(p)
    );
    // …and as the simulator backend.
    let sim = sor::run_sor(
        ClusterConfig {
            hosts: 2,
            views: 16,
            pages: 256,
            alloc_mode: AllocMode::FINE,
            ..ClusterConfig::default()
        },
        p,
    );
    assert!(
        close(host.checksum, sim.checksum, 1e-9),
        "host {} vs sim {}",
        host.checksum,
        sim.checksum
    );
    // Real faults were taken: the boundary-row exchange cannot happen
    // without SIGSEGVs on a two-host run.
    assert!(host.report.total_faults() > 0, "no real faults recorded");
}

#[test]
fn is_runs_on_real_memory_and_matches_the_simulator() {
    let p = IsParams::small();
    let host = is::run_is_host(4, p).expect("host run");
    assert!(
        close(host.checksum, is::reference(p, 4), 1e-9),
        "host {} vs reference {}",
        host.checksum,
        is::reference(p, 4)
    );
    let sim = is::run_is(
        ClusterConfig {
            hosts: 4,
            views: 8,
            pages: 64,
            ..ClusterConfig::default()
        },
        p,
    );
    assert!(
        close(host.checksum, sim.checksum, 1e-9),
        "host {} vs sim {}",
        host.checksum,
        sim.checksum
    );
    assert!(host.report.total_faults() > 0, "no real faults recorded");
    // The rotated merge invalidates region copies as they travel between
    // hosts — a multi-host IS run with zero invalidations means the write
    // path never revoked anything.
    assert!(
        host.report.invalidations.iter().sum::<u64>() > 0,
        "no invalidations on a 4-host IS run"
    );
}

/// The smallest coherence round-trip on real signals: two OS threads
/// ping-pong one u32 minipage. Host 0's store faults (SIGSEGV), the
/// manager invalidates host 1's copy via a real mprotect on its view,
/// and vice versa — every handoff is observable in the fault and
/// invalidation counters.
#[test]
fn two_hosts_round_trip_one_minipage_through_real_invalidations() {
    use millipage::Dsm;
    const ROUNDS: u32 = 8;
    let final_seen = std::sync::Mutex::new([0u32; 2]);
    let report = millipage::run_host(
        millipage::HostRunConfig {
            hosts: 2,
            views: 2,
            pages: 8,
            ..Default::default()
        },
        |s| s.alloc_vec_init(&[0u32]),
        |ctx, cell| {
            let me = ctx.host().index();
            for round in 0..ROUNDS {
                // Alternating writer: the other host's copy (if any) must
                // be revoked before the store may retire.
                if round as usize % 2 == me {
                    ctx.write_range(cell, 0, &[round + 1]);
                }
                ctx.barrier();
                // Both hosts read the round's value back.
                assert_eq!(ctx.read_range(cell, 0..1), vec![round + 1]);
                ctx.barrier();
            }
            final_seen.lock().unwrap()[me] = ctx.read_range(cell, 0..1)[0];
        },
    )
    .expect("host run");
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(*final_seen.lock().unwrap(), [ROUNDS, ROUNDS]);
    // Each ownership handoff costs the new writer a real write fault and
    // the old holder a real invalidation. The allocation's home (host 0)
    // starts with the page ReadWrite, so its first store is fault-free.
    assert!(
        report.write_faults.iter().sum::<u64>() >= (ROUNDS - 1) as u64,
        "write faults {:?}",
        report.write_faults
    );
    let invs: u64 = report.invalidations.iter().sum();
    assert!(
        invs >= (ROUNDS - 1) as u64,
        "expected an invalidation per handoff, got {invs}"
    );
}

#[test]
fn single_host_run_faults_but_never_invalidates() {
    let p = SorParams::small();
    let host = sor::run_sor_host(1, p).expect("host run");
    assert!(close(host.checksum, sor::reference(p), 1e-6));
    assert_eq!(
        host.report.invalidations.iter().sum::<u64>(),
        0,
        "single host has nobody to invalidate"
    );
}
