//! End-to-end schedule exploration: the seeded random/PCT sweep over the
//! built-in racy workload must (a) audit clean on the fixed protocol,
//! (b) catch the deliberately re-introduced PR-3 stale-reinstall bug and
//! shrink it to a small replayable reproducer, and (c) replay that
//! reproducer clean on the fixed code — the regression test for the
//! original lost-update fix.

use millipage::explore::{race_config, race_workload};
use millipage::{explore, replay_repro, ExploreOpts, MinimizedRepro};

#[test]
fn clean_sweep_on_fixed_code() {
    let opts = ExploreOpts {
        schedules: 40,
        seed: 7,
        ..ExploreOpts::default()
    };
    let outcome = explore(&race_config(), race_workload, &opts);
    assert!(
        outcome.is_clean(),
        "fixed code should survive every explored schedule, found: {:?}",
        outcome.finding
    );
    assert_eq!(outcome.schedules_run, 40);
}

#[test]
fn injected_stale_reinstall_is_caught_shrunk_and_fixed() {
    let mut buggy = race_config();
    buggy.bug_stale_reinstall = true;
    let opts = ExploreOpts {
        schedules: 200,
        seed: 7,
        ..ExploreOpts::default()
    };
    let outcome = explore(&buggy, race_workload, &opts);
    let repro = outcome
        .finding
        .expect("the sweep must catch the injected stale-reinstall bug");
    assert!(
        repro
            .violations
            .iter()
            .any(|v| v.contains("after barrier in round")),
        "expected the lost-update assert among violations: {:?}",
        repro.violations
    );

    // The reproducer survives a JSON round trip (what CI archives).
    let parsed =
        MinimizedRepro::from_json(&repro.to_json()).expect("reproducer JSON must parse back");
    assert_eq!(parsed, repro);

    // Shrinking preserved failure: the minimized schedule still loses the
    // update on buggy code...
    let violations = replay_repro(&buggy, race_workload, &repro, 1 << 15);
    assert!(
        !violations.is_empty(),
        "minimized reproducer no longer fails on buggy code"
    );

    // ...and the exact same interleaving is clean on the fixed protocol:
    // the regression test for the PR-3 stale-reinstall fix.
    let violations = replay_repro(&race_config(), race_workload, &repro, 1 << 15);
    assert!(
        violations.is_empty(),
        "fixed code still fails the minimized schedule: {violations:?}"
    );
}
