//! End-to-end protocol tracing: a 4-host workload runs with the tracer
//! on, and the recorded event stream must (a) be complete (no ring
//! overwrites), (b) replay cleanly through the invariant auditor under
//! every home policy and both consistency modes — with the wire perfect
//! *and* under the acceptance fault mix (1% drop + 0.5% dup + 2%
//! reorder) — and (c) export to well-formed Chrome-trace/Perfetto JSON.

use millipage::{
    audit, run, AllocMode, AuditMode, ChromeTrace, ClusterConfig, Consistency, HomePolicyKind,
    HostId, RunReport, TraceLog, Tracer, WireFaults,
};

/// A workload touching every traced protocol path: barrier-separated
/// writer rotation (read/write faults, invalidation fan-out), a
/// lock-protected counter (lock grant/release), and a final prefetch +
/// push round (bulk transfers).
fn traced_workload(
    policy: HomePolicyKind,
    consistency: Consistency,
    faults: WireFaults,
) -> (RunReport, TraceLog) {
    let tracer = Tracer::enabled(1 << 14);
    let cfg = ClusterConfig {
        hosts: 4,
        views: 8,
        pages: 64,
        alloc_mode: AllocMode::FINE,
        consistency,
        home_policy: policy,
        tracer: tracer.clone(),
        seed: 13,
        faults,
        ..ClusterConfig::default()
    };
    let report = run(
        cfg,
        |s| {
            let cells = (0..8)
                .map(|_| s.alloc_vec_init(&[0u64; 2]))
                .collect::<Vec<_>>();
            let counter = s.alloc_cell_init::<u64>(0);
            (cells, counter)
        },
        |ctx, (cells, counter)| {
            for phase in 0..3u64 {
                if ctx.host() == HostId((phase as usize % ctx.hosts()) as u16) {
                    for (i, c) in cells.iter().enumerate() {
                        let v = ctx.get(c, 0);
                        ctx.set(c, 0, v + phase + i as u64);
                    }
                }
                ctx.barrier();
            }
            ctx.lock(1);
            let v = ctx.cell_get(counter);
            ctx.cell_set(counter, v + 1);
            ctx.unlock(1);
            ctx.barrier();
            ctx.prefetch_vec(&cells[0]);
            let _ = ctx.get(&cells[0], 1);
            ctx.barrier();
        },
    );
    (report, tracer.drain())
}

const POLICIES: [HomePolicyKind; 3] = [
    HomePolicyKind::Centralized,
    HomePolicyKind::Interleaved,
    HomePolicyKind::FirstTouch,
];

/// The acceptance fault mix: 1% drop, 0.5% duplicate, 2% reorder.
fn lossy_plane() -> WireFaults {
    WireFaults::lossy(13, 0.01, 0.005, 0.02)
}

/// Runs the workload and holds its trace to the full invariant set; with
/// the fault plane active additionally requires that no send exhausted
/// its retransmit budget and no protocol error surfaced — the reliable
/// channel hid every injected fault from the DSM protocol.
fn assert_audits_clean(policy: HomePolicyKind, consistency: Consistency, faults: WireFaults) {
    let fault_run = faults.is_active();
    let (report, log) = traced_workload(policy, consistency, faults);
    assert!(
        report.coherence_violations.is_empty(),
        "{policy:?}/{consistency:?}: {:?}",
        report.coherence_violations
    );
    assert!(
        report.protocol_errors.is_empty(),
        "{policy:?}/{consistency:?}: {:?}",
        report.protocol_errors
    );
    assert_eq!(log.dropped, 0, "{policy:?}: ring overflow");
    assert!(!log.events.is_empty(), "{policy:?}: empty trace");
    let mode = match consistency {
        Consistency::SequentialSwMr => AuditMode::SwMr,
        Consistency::HomeEagerRc => AuditMode::Hlrc,
    };
    let violations = audit(&log.events, mode);
    assert!(
        violations.is_empty(),
        "{policy:?}/{consistency:?}: {} violations, first: {:?}",
        violations.len(),
        violations.first()
    );
    if fault_run {
        let nf = report.net_faults.expect("fault plane was active");
        assert_eq!(nf.expired, 0, "{policy:?}: a send exhausted its budget");
    } else {
        assert!(
            report.net_faults.is_none(),
            "inactive plane must report no fault stats"
        );
    }
}

/// The tentpole acceptance check: under all three home policies the
/// 4-host SW/MR trace is complete and replays with zero violations.
#[test]
fn swmr_trace_audits_clean_under_every_home_policy() {
    for policy in POLICIES {
        assert_audits_clean(policy, Consistency::SequentialSwMr, WireFaults::disabled());
    }
}

/// The HLRC protocol's traces replay cleanly too (diff acks before
/// barrier release, no negative invalidation counters).
#[test]
fn hlrc_trace_audits_clean_under_every_home_policy() {
    for policy in POLICIES {
        assert_audits_clean(policy, Consistency::HomeEagerRc, WireFaults::disabled());
    }
}

/// At 1% loss the reliable channel must make the wire look perfect: the
/// SW/MR replay — including the exactly-once FIFO delivery check on the
/// wire sequence numbers — finds nothing, for every home policy.
#[test]
fn swmr_trace_audits_clean_at_one_percent_loss() {
    for policy in POLICIES {
        assert_audits_clean(policy, Consistency::SequentialSwMr, lossy_plane());
    }
}

/// Same bar for HLRC: release diffs, their acks and the barrier protocol
/// survive drops, duplicates and reordering without a visible trace.
#[test]
fn hlrc_trace_audits_clean_at_one_percent_loss() {
    for policy in POLICIES {
        assert_audits_clean(policy, Consistency::HomeEagerRc, lossy_plane());
    }
}

/// Traced runs feed the latency histograms: the fault-latency quantiles
/// are available and ordered, every fault lands in the histogram, and
/// the server-queueing histogram stays consistent with its count.
#[test]
fn traced_run_populates_histograms() {
    let (traced, log) = traced_workload(
        HomePolicyKind::Centralized,
        Consistency::SequentialSwMr,
        WireFaults::disabled(),
    );
    let p50 = traced.fault_latency_p50().expect("faults were recorded");
    let p95 = traced.fault_latency_p95().expect("faults were recorded");
    let p99 = traced.fault_latency_p99().expect("faults were recorded");
    assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
    assert_eq!(
        traced.fault_latency.count(),
        traced.read_faults + traced.write_faults
    );
    assert!(log.events.len() > 100, "suspiciously small trace");
    // Every message the servers received was queued for some time ≥ 0.
    assert!(traced.server_queue_delay.count() > 0);
    if let (Some(lo), Some(hi)) = (
        traced.server_queue_delay.quantile(0.0),
        traced.server_queue_delay.quantile(1.0),
    ) {
        assert!(lo <= hi);
    }
}

/// The Chrome-trace exporter emits well-formed JSON (checked with a
/// small structural parser — the workspace builds offline, so there is
/// no JSON crate to lean on) with the expected metadata.
#[test]
fn chrome_trace_export_is_well_formed_json() {
    let (_, log) = traced_workload(
        HomePolicyKind::Interleaved,
        Consistency::SequentialSwMr,
        WireFaults::disabled(),
    );
    let mut ct = ChromeTrace::new();
    ct.add_run("audit-test", 0, &log.events);
    let json = ct.finish();
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("process_name"));
    assert!(json.contains("\"displayTimeUnit\""));
    let rest = skip_json_value(json.trim()).expect("valid JSON value");
    assert!(rest.trim().is_empty(), "trailing garbage: {rest:.40?}");

    // The RunReport JSON dump must be well-formed too.
    let (report, _) = traced_workload(
        HomePolicyKind::Centralized,
        Consistency::SequentialSwMr,
        WireFaults::disabled(),
    );
    let rj = report.to_json();
    let rest = skip_json_value(rj.trim()).expect("valid report JSON");
    assert!(rest.trim().is_empty(), "trailing garbage: {rest:.40?}");
    assert!(rj.contains("\"fault_latency\""));
    assert!(rj.contains("\"p99_ns\""));
}

// A minimal recursive-descent JSON *recognizer*: consumes one value,
// returns the remaining input, or None on malformed input.
fn skip_json_value(s: &str) -> Option<&str> {
    let s = s.trim_start();
    let mut chars = s.char_indices();
    match chars.next()?.1 {
        '{' => skip_json_container(&s[1..], '}', true),
        '[' => skip_json_container(&s[1..], ']', false),
        '"' => skip_json_string(s),
        _ => {
            // number / true / false / null: eat the token.
            let end = s
                .find(|c: char| !(c.is_ascii_alphanumeric() || "+-.eE".contains(c)))
                .unwrap_or(s.len());
            (end > 0).then(|| &s[end..])
        }
    }
}

fn skip_json_string(s: &str) -> Option<&str> {
    debug_assert!(s.starts_with('"'));
    let mut escaped = false;
    for (i, c) in s[1..].char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' => escaped = true,
            '"' => return Some(&s[1 + i + 1..]),
            _ => {}
        }
    }
    None
}

fn skip_json_container(mut s: &str, close: char, keyed: bool) -> Option<&str> {
    loop {
        s = s.trim_start();
        if let Some(rest) = s.strip_prefix(close) {
            return Some(rest);
        }
        if keyed {
            s = skip_json_string(s.trim_start())?;
            s = s.trim_start().strip_prefix(':')?;
        }
        s = skip_json_value(s)?;
        s = s.trim_start();
        if let Some(rest) = s.strip_prefix(',') {
            s = rest;
        } else {
            s = s.strip_prefix(close)?;
            return Some(s);
        }
    }
}
