//! Detector tests for the sharing-diagnostics plane: three planted
//! pathologies — a false-sharing pair, a forced two-host ping-pong, and a
//! skewed-home hammer — each of which the matching detector must rank
//! first, under every home policy and the deterministic scheduler (so the
//! rankings are reproducible byte for byte).

use millipage::{run, ClusterConfig, DiagReport, HomePolicyKind, SchedMode};

const POLICIES: [HomePolicyKind; 3] = [
    HomePolicyKind::Centralized,
    HomePolicyKind::Interleaved,
    HomePolicyKind::FirstTouch,
];

fn cfg(hosts: usize, policy: HomePolicyKind) -> ClusterConfig {
    ClusterConfig {
        hosts,
        views: 8,
        pages: 64,
        home_policy: policy,
        diag: true,
        sched: SchedMode::deterministic(),
        ..ClusterConfig::default()
    }
}

/// Two hosts write pairwise-disjoint halves of one 64-byte minipage — the
/// textbook false-sharing pattern MultiView exists to split away. A decoy
/// minipage sees the same write traffic on *overlapping* bytes (true
/// sharing), which the detector must not flag.
#[test]
fn planted_false_sharing_pair_is_ranked_first() {
    for policy in POLICIES {
        let report = run(
            cfg(2, policy),
            |s| {
                let planted = s.alloc_vec_init(&[0u32; 16]);
                let decoy = s.alloc_vec_init(&[0u32; 16]);
                (planted, decoy)
            },
            |ctx, (planted, decoy)| {
                let me = ctx.host().index();
                for round in 0..6u32 {
                    // Disjoint halves: host 0 owns bytes 0..32, host 1
                    // bytes 32..64 — never the same byte, yet the whole
                    // minipage bounces on every write.
                    ctx.write_range(planted, me * 8, &[round; 8]);
                    ctx.barrier();
                    // The decoy is written on the *same* bytes by both
                    // hosts in alternation: contended, but truly shared.
                    if round as usize % 2 == me {
                        ctx.write_range(decoy, 0, &[round; 8]);
                    }
                    ctx.barrier();
                }
            },
        );
        let diag = report.diag.as_ref().expect("diagnostics enabled");
        let top = diag
            .false_sharing
            .first()
            .unwrap_or_else(|| panic!("{policy:?}: no false-sharing finding"));
        assert_eq!(
            top.mp, 0,
            "{policy:?}: planted pair not ranked first: {:?}",
            diag.false_sharing
        );
        assert!(
            !diag.false_sharing.iter().any(|f| f.mp == 1),
            "{policy:?}: overlapping-write decoy flagged as false sharing"
        );
    }
}

/// Two hosts alternately write the same cell — every write migrates the
/// single writable copy, the alternation counter climbs once per handoff.
/// A second cell ping-pongs at half the rate and must rank below.
#[test]
fn planted_ping_pong_is_ranked_first() {
    for policy in POLICIES {
        let report = run(
            cfg(2, policy),
            |s| {
                let hot = s.alloc_vec_init(&[0u32]);
                let mild = s.alloc_vec_init(&[0u32]);
                (hot, mild)
            },
            |ctx, (hot, mild)| {
                let me = ctx.host().index();
                for round in 0..16u32 {
                    if round as usize % 2 == me {
                        ctx.write_range(hot, 0, &[round]);
                        if round < 8 {
                            ctx.write_range(mild, 0, &[round]);
                        }
                    }
                    ctx.barrier();
                }
            },
        );
        let diag = report.diag.as_ref().expect("diagnostics enabled");
        let top = diag
            .ping_pong
            .first()
            .unwrap_or_else(|| panic!("{policy:?}: no ping-pong finding"));
        assert_eq!(
            top.mp, 0,
            "{policy:?}: planted ping-pong cell not ranked first: {:?}",
            diag.ping_pong
        );
        // The milder cell alternated too (7 handoffs > threshold), but at
        // a strictly lower score.
        let mild_score = diag.ping_pong.iter().find(|f| f.mp == 1).map(|f| f.score);
        assert!(
            mild_score.is_some_and(|s| s < top.score),
            "{policy:?}: expected the half-rate cell ranked below ({:?})",
            diag.ping_pong
        );
    }
}

/// All four hosts hammer one minipage while the rest of the heap sees
/// only light, scattered traffic — the hammered minipage's home ends up
/// serving several times the mean per-host fault load.
#[test]
fn planted_home_skew_is_ranked_first() {
    for policy in POLICIES {
        let report = run(
            cfg(4, policy),
            |s| {
                let hot = s.alloc_vec_init(&[0u32]);
                let cold: Vec<_> = (0..8).map(|_| s.alloc_vec_init(&[0u32])).collect();
                (hot, cold)
            },
            |ctx, (hot, cold)| {
                let me = ctx.host().index();
                for round in 0..12u32 {
                    if round as usize % ctx.hosts() == me {
                        ctx.write_range(hot, 0, &[round]);
                    }
                    ctx.barrier();
                    let _ = ctx.read_range(hot, 0..1);
                    ctx.barrier();
                }
                // Light noise: each host touches one cold cell once.
                let _ = ctx.read_range(&cold[me % cold.len()], 0..1);
                ctx.barrier();
            },
        );
        let diag: &DiagReport = report.diag.as_ref().expect("diagnostics enabled");
        let top = diag
            .hot_home
            .first()
            .unwrap_or_else(|| panic!("{policy:?}: no hot-home finding"));
        assert_eq!(
            top.mp, 0,
            "{policy:?}: hammered minipage is not the hot home's hottest: {:?}",
            diag.hot_home
        );
        // The finding names the hammered minipage's actual home shard.
        let hot_home = diag
            .minipages
            .iter()
            .find(|d| d.mp == 0)
            .expect("hot minipage merged")
            .home;
        assert_eq!(
            top.host, hot_home,
            "{policy:?}: finding blames host {} but mp0 is homed at {hot_home}",
            top.host
        );
    }
}

/// One host writes two *distant* ranges of a minipage that straddle the
/// other host's range. The old min/max extent widening collapsed the two
/// ranges into one hull that swallowed the other host's extent, so the
/// false-sharing detector saw "overlap" and stayed silent. With bounded
/// per-range extents the planted pattern must be flagged. The three write
/// phases are separated by the other host's invalidating write so each
/// range actually faults (under SW/MR a host only faults on bytes it does
/// not already own).
#[test]
fn planted_two_range_writer_is_still_false_sharing() {
    for policy in POLICIES {
        let report = run(
            cfg(2, policy),
            |s| s.alloc_vec_init(&[0u32; 16]),
            |ctx, v| {
                let me = ctx.host().index();
                for round in 0..4u32 {
                    // Phase 1: host 0 writes the low range (bytes 0..8).
                    if me == 0 {
                        ctx.write_range(v, 0, &[round; 2]);
                    }
                    ctx.barrier();
                    // Phase 2: host 1 writes the middle (bytes 28..36),
                    // invalidating host 0's copy.
                    if me == 1 {
                        ctx.write_range(v, 7, &[round; 2]);
                    }
                    ctx.barrier();
                    // Phase 3: host 0 writes the high range (bytes 56..64),
                    // faulting again at a distant offset.
                    if me == 0 {
                        ctx.write_range(v, 14, &[round; 2]);
                    }
                    ctx.barrier();
                }
            },
        );
        let diag = report.diag.as_ref().expect("diagnostics enabled");
        assert!(
            diag.false_sharing.iter().any(|f| f.mp == 0),
            "{policy:?}: two-range writer suppressed the false-sharing finding: {:?}",
            diag.minipages
        );
    }
}

/// Uniform load on a Centralized layout must not produce a hot-home
/// finding: the old detector averaged the fault load over *all* hosts, so
/// the sole homing shard trivially exceeded the skew threshold even when
/// every minipage was equally warm.
#[test]
fn uniform_centralized_load_is_not_a_hot_home() {
    for hosts in [1usize, 8] {
        let report = run(
            cfg(hosts, HomePolicyKind::Centralized),
            |s| {
                (0..8)
                    .map(|_| s.alloc_vec_init(&[0u32; 4]))
                    .collect::<Vec<_>>()
            },
            |ctx, mps| {
                let me = ctx.host().index();
                for round in 0..4u32 {
                    // Each host works its own minipage: perfectly uniform,
                    // nothing for migration or splitting to fix.
                    ctx.write_range(&mps[me % mps.len()], 0, &[round]);
                    ctx.barrier();
                }
            },
        );
        let diag = report.diag.as_ref().expect("diagnostics enabled");
        assert!(
            diag.hot_home.is_empty(),
            "{hosts} hosts: uniform load flagged as hot home: {:?}",
            diag.hot_home
        );
    }
}

/// The rankings themselves are deterministic: two runs under the same
/// policy produce identical findings fingerprints (the property `repro
/// diagnose` relies on to compare its traced and stats-only runs).
#[test]
fn detector_output_is_deterministic_across_runs() {
    let go = || {
        let report = run(
            cfg(2, HomePolicyKind::Centralized),
            |s| s.alloc_vec_init(&[0u32; 16]),
            |ctx, v| {
                let me = ctx.host().index();
                for round in 0..6u32 {
                    ctx.write_range(v, me * 8, &[round; 8]);
                    ctx.barrier();
                }
            },
        );
        report
            .diag
            .expect("diagnostics enabled")
            .findings_fingerprint()
    };
    assert_eq!(go(), go());
}
