//! Sequential-consistency litmus tests against the Millipage cluster.
//!
//! §3.2: "The programming model in millipage is Sequential Consistency
//! ... parallel applications run on millipage as if they were executing on
//! a physically-shared memory SMP machine." The SW/MR protocol must
//! therefore forbid the classic weak-memory outcomes; these tests hammer
//! the racy windows and assert the forbidden results never appear.

use millipage::{run, AllocMode, ClusterConfig, CostModel, HomePolicyKind, HostId};
use parking_lot::Mutex;

fn cfg(hosts: usize, seed: u64) -> ClusterConfig {
    ClusterConfig {
        hosts,
        views: 8,
        pages: 64,
        cost: CostModel::default(),
        alloc_mode: AllocMode::FINE,
        seed,
        ..ClusterConfig::default()
    }
}

#[test]
fn store_buffering_outcome_is_forbidden() {
    // SB: h0: x=1; r1=y   h1: y=1; r2=x   — SC forbids r1=r2=0.
    const ROUNDS: usize = 40;
    let outcomes = Mutex::new(Vec::new());
    let report = run(
        cfg(2, 11),
        |s| {
            let x = s.alloc_cell_init::<u32>(0);
            let y = s.alloc_cell_init::<u32>(0);
            (x, y)
        },
        |ctx, (x, y)| {
            let mut local = Vec::new();
            for round in 0..ROUNDS {
                if ctx.host() == HostId(0) {
                    ctx.cell_set(x, 1);
                    local.push((round, ctx.cell_get(y)));
                } else {
                    ctx.cell_set(y, 1);
                    local.push((round, ctx.cell_get(x)));
                }
                ctx.barrier();
                // Reset for the next round.
                if ctx.host() == HostId(0) {
                    ctx.cell_set(x, 0);
                    ctx.cell_set(y, 0);
                }
                ctx.barrier();
            }
            outcomes.lock().push((ctx.host(), local));
        },
    );
    assert!(report.coherence_violations.is_empty());
    let all = outcomes.into_inner();
    let h0 = &all.iter().find(|(h, _)| *h == HostId(0)).expect("h0 ran").1;
    let h1 = &all.iter().find(|(h, _)| *h == HostId(1)).expect("h1 ran").1;
    for round in 0..ROUNDS {
        let r1 = h0[round].1;
        let r2 = h1[round].1;
        assert!(
            !(r1 == 0 && r2 == 0),
            "round {round}: store-buffering outcome (0,0) observed — not SC"
        );
    }
}

#[test]
fn message_passing_never_reads_stale_data() {
    // MP: h0: data=42; flag=1   h1: spin on flag; read data — must be 42.
    let report = run(
        cfg(2, 13),
        |s| {
            let data = s.alloc_cell_init::<u64>(0);
            let flag = s.alloc_cell_init::<u32>(0);
            (data, flag)
        },
        |ctx, (data, flag)| {
            if ctx.host() == HostId(0) {
                ctx.compute(200_000);
                ctx.cell_set(data, 42);
                ctx.cell_set(flag, 1);
            } else {
                let mut spins = 0u64;
                while ctx.cell_get(flag) == 0 {
                    ctx.compute(10_000);
                    spins += 1;
                    assert!(spins < 5_000_000, "flag never arrived");
                }
                assert_eq!(
                    ctx.cell_get(data),
                    42,
                    "flag was visible before the data it publishes"
                );
            }
            ctx.barrier();
        },
    );
    assert!(report.coherence_violations.is_empty());
}

#[test]
fn iriw_observers_agree_on_write_order() {
    // IRIW: two writers, two readers reading in opposite orders. SC
    // forbids the two readers disagreeing about the write order:
    // (r1,r2,r3,r4) = (1,0,1,0) must never appear.
    const ROUNDS: usize = 25;
    let per_reader = Mutex::new(Vec::<(usize, usize, u32, u32)>::new());
    let report = run(
        cfg(4, 17),
        |s| {
            let x = s.alloc_cell_init::<u32>(0);
            let y = s.alloc_cell_init::<u32>(0);
            (x, y)
        },
        |ctx, (x, y)| {
            for round in 0..ROUNDS {
                match ctx.host().index() {
                    0 => ctx.cell_set(x, 1),
                    1 => ctx.cell_set(y, 1),
                    2 => {
                        let r1 = ctx.cell_get(x);
                        let r2 = ctx.cell_get(y);
                        per_reader.lock().push((round, 2, r1, r2));
                    }
                    _ => {
                        let r3 = ctx.cell_get(y);
                        let r4 = ctx.cell_get(x);
                        per_reader.lock().push((round, 3, r3, r4));
                    }
                }
                ctx.barrier();
                if ctx.host().index() == 0 {
                    ctx.cell_set(x, 0);
                }
                if ctx.host().index() == 1 {
                    ctx.cell_set(y, 0);
                }
                ctx.barrier();
            }
        },
    );
    assert!(report.coherence_violations.is_empty());
    let obs = per_reader.into_inner();
    for round in 0..ROUNDS {
        let a = obs
            .iter()
            .find(|(r, h, _, _)| *r == round && *h == 2)
            .expect("reader 2 observed");
        let b = obs
            .iter()
            .find(|(r, h, _, _)| *r == round && *h == 3)
            .expect("reader 3 observed");
        let forbidden = a.2 == 1 && a.3 == 0 && b.2 == 1 && b.3 == 0;
        assert!(
            !forbidden,
            "round {round}: IRIW readers disagree on write order — not SC"
        );
    }
}

#[test]
fn single_location_writes_serialize() {
    // Coherence: concurrent unsynchronized writes to one cell; after a
    // barrier everyone reads the same final value, equal to some host's
    // write.
    const ROUNDS: usize = 20;
    let finals = Mutex::new(Vec::new());
    let report = run(
        cfg(4, 23),
        |s| s.alloc_cell_init::<u32>(999),
        |ctx, c| {
            for round in 0..ROUNDS {
                ctx.cell_set(c, (round * 10 + ctx.host().index()) as u32);
                ctx.barrier();
                // Read before taking the host-local results lock: a DSM
                // access can block on the protocol, and holding an OS lock
                // across that wait deadlocks the deterministic scheduler
                // (the lock-holder parks outside its yield points).
                let v = ctx.cell_get(c);
                finals.lock().push((round, ctx.host(), v));
                ctx.barrier();
            }
        },
    );
    assert!(report.coherence_violations.is_empty());
    let all = finals.into_inner();
    for round in 0..ROUNDS {
        let vals: Vec<u32> = all
            .iter()
            .filter(|(r, _, _)| *r == round)
            .map(|(_, _, v)| *v)
            .collect();
        assert_eq!(vals.len(), 4);
        assert!(
            vals.windows(2).all(|w| w[0] == w[1]),
            "round {round}: readers disagree: {vals:?}"
        );
        let v = vals[0];
        assert!(
            (0..4).any(|h| v == (round * 10 + h) as u32),
            "round {round}: final value {v} was never written"
        );
    }
}

#[test]
fn unsynchronized_sharing_still_coherent_under_page_grain() {
    // The same serialization holds when everything false-shares one page.
    let report = run(
        ClusterConfig {
            alloc_mode: AllocMode::PageGrain,
            ..cfg(4, 29)
        },
        |s| {
            let a = s.alloc_cell_init::<u64>(0);
            let b = s.alloc_cell_init::<u64>(0);
            (a, b)
        },
        |ctx, (a, b)| {
            for i in 0..30u64 {
                if ctx.host().index() % 2 == 0 {
                    ctx.cell_set(a, i);
                    let _ = ctx.cell_get(b);
                } else {
                    ctx.cell_set(b, i);
                    let _ = ctx.cell_get(a);
                }
            }
            ctx.barrier();
            let (va, vb) = (ctx.cell_get(a), ctx.cell_get(b));
            assert_eq!(va, 29);
            assert_eq!(vb, 29);
        },
    );
    assert!(report.coherence_violations.is_empty());
    // Real-time racing can let one host finish before the other starts
    // (the optimistic-timing approximation), so only the minimum exchange
    // is guaranteed: the remote host fetches the page and the first host
    // re-fetches it for its final reads.
    assert!(
        report.read_faults + report.write_faults >= 2,
        "the page must move between hosts at least once"
    );
}

#[test]
fn register_stays_linearizable_under_distributed_homes() {
    // A single shared register written with strictly increasing values by
    // a rotating writer while every other host reads it concurrently.
    // Sequential consistency makes the register linearizable, which with
    // monotone writes means: every host's observed value sequence is
    // non-decreasing, every observed value was actually written, and
    // after the closing barrier everyone agrees on the final (maximal)
    // value. Exercised under both distributed home policies so the
    // invariant cannot depend on all directory state sitting on host 0.
    const ROUNDS: u32 = 12;
    const READS_PER_ROUND: u32 = 6;
    for policy in [HomePolicyKind::Interleaved, HomePolicyKind::FirstTouch] {
        for hosts in [2usize, 4, 8] {
            let observations = Mutex::new(Vec::<(HostId, Vec<u32>)>::new());
            let finals = Mutex::new(Vec::<u32>::new());
            let report = run(
                ClusterConfig {
                    home_policy: policy,
                    ..cfg(hosts, 31)
                },
                |s| s.alloc_cell_init::<u32>(0),
                |ctx, reg| {
                    let mut seen = Vec::new();
                    for round in 0..ROUNDS {
                        if ctx.host().index() == round as usize % ctx.hosts() {
                            // Monotone writes: round+1 strictly increases.
                            ctx.cell_set(reg, round + 1);
                        } else {
                            for _ in 0..READS_PER_ROUND {
                                seen.push(ctx.cell_get(reg));
                                ctx.compute(5_000);
                            }
                        }
                        ctx.barrier();
                    }
                    // As above: never hold the results lock across a DSM
                    // access.
                    let last = ctx.cell_get(reg);
                    finals.lock().push(last);
                    observations.lock().push((ctx.host(), seen));
                },
            );
            let tag = format!("{policy:?} hosts={hosts}");
            assert!(report.coherence_violations.is_empty(), "{tag}");
            for (host, seen) in observations.into_inner() {
                assert!(
                    seen.windows(2).all(|w| w[0] <= w[1]),
                    "{tag}: host {host} saw the register go backwards: {seen:?}"
                );
                assert!(
                    seen.iter().all(|&v| v <= ROUNDS),
                    "{tag}: host {host} read a never-written value: {seen:?}"
                );
            }
            let finals = finals.into_inner();
            assert!(
                finals.iter().all(|&v| v == ROUNDS),
                "{tag}: hosts disagree on the final value: {finals:?}"
            );
        }
    }
}
