//! Distributed minipage management: home-policy equivalence and
//! directory-invariant properties.
//!
//! Two families of checks:
//!
//! 1. **Centralized == the paper's original protocol.** The refactor
//!    behind [`HomePolicyKind`] must be invisible when every minipage is
//!    homed at the manager: the golden counters below were captured from
//!    the pre-refactor single-manager implementation on a deterministic
//!    barrier-separated workload and must keep reproducing exactly.
//! 2. **Every policy preserves the protocol invariants.** Random
//!    barrier-paced programs run under each policy; afterwards the
//!    readers-XOR-one-writer (SW/MR) invariant, the drained-directory
//!    invariant and memory correctness must all hold, and the app-side
//!    counters (faults, invalidations, messages) must not depend on
//!    *where* minipages are homed — only latencies may.

use millipage::{
    run, AllocMode, ClusterConfig, Consistency, CostModel, HomePolicyKind, HostId, RunReport,
};
use parking_lot::Mutex;
use proptest::prelude::*;

/// The deterministic workload the golden counters were captured on:
/// 16 one-cell u64 vectors, 4 barrier-separated phases, one writer per
/// phase rotating over the hosts, every writer touching every cell.
fn golden_workload(hosts: usize, policy: HomePolicyKind) -> RunReport {
    let cfg = ClusterConfig {
        hosts,
        views: 16,
        pages: 64,
        cost: CostModel::default(),
        alloc_mode: AllocMode::FINE,
        threads_per_host: 1,
        consistency: Consistency::SequentialSwMr,
        home_policy: policy,
        seed: 7,
        ..ClusterConfig::default()
    };
    run(
        cfg,
        |s| {
            (0..16)
                .map(|_| s.alloc_vec_init(&[0u64; 4]))
                .collect::<Vec<_>>()
        },
        move |ctx, cells| {
            for phase in 0..4u64 {
                if ctx.host() == HostId((phase as usize % ctx.hosts()) as u16) {
                    for (i, c) in cells.iter().enumerate() {
                        let v = ctx.get(c, 0);
                        ctx.set(c, 0, v + phase + i as u64);
                    }
                }
                ctx.barrier();
            }
        },
    )
}

/// Centralized reproduces the pre-refactor manager bit-for-bit: the
/// golden counters below are the seed implementation's output.
#[test]
fn centralized_matches_seed_counters() {
    for (hosts, messages) in [(2, 498u64), (4, 516), (8, 552)] {
        let r = golden_workload(hosts, HomePolicyKind::Centralized);
        assert_eq!(r.policy, "centralized");
        assert_eq!(
            (r.read_faults, r.write_faults, r.messages),
            (48, 48, messages),
            "hosts={hosts}"
        );
        assert_eq!(r.competing_requests, 0, "hosts={hosts}");
        assert_eq!(r.invalidations, 48, "hosts={hosts}");
        assert_eq!(r.barriers, 4, "hosts={hosts}");
        assert_eq!(r.payload_bytes, 3072, "hosts={hosts}");
        assert!(r.coherence_violations.is_empty(), "hosts={hosts}");
        // Every directory entry lives at the manager shard.
        assert!(r.shards[1..].iter().all(|s| s.directory_entries == 0));
    }
}

/// With every allocation issued from the setup phase (which runs on the
/// manager host), first-touch degenerates to centralized placement: the
/// same homes, hence the same faults, invalidations and messages — the
/// routing machinery itself adds no traffic.
#[test]
fn first_touch_on_setup_allocations_matches_centralized_counters() {
    for hosts in [2usize, 4, 8] {
        let base = golden_workload(hosts, HomePolicyKind::Centralized);
        let r = golden_workload(hosts, HomePolicyKind::FirstTouch);
        assert!(r.coherence_violations.is_empty(), "hosts={hosts}");
        assert_eq!(
            (
                r.read_faults,
                r.write_faults,
                r.invalidations,
                r.messages,
                r.barriers
            ),
            (
                base.read_faults,
                base.write_faults,
                base.invalidations,
                base.messages,
                base.barriers
            ),
            "hosts={hosts}"
        );
    }
}

/// Interleaved homing spreads the directory over every shard, stays
/// deterministic run-to-run, and pays only the expected extra faults:
/// the initial writable copy now starts at each minipage's home, so the
/// phase-0 writer faults on exactly the minipages homed elsewhere.
#[test]
fn interleaved_spreads_directories_and_stays_deterministic() {
    for hosts in [2usize, 4, 8] {
        let base = golden_workload(hosts, HomePolicyKind::Centralized);
        let r = golden_workload(hosts, HomePolicyKind::Interleaved);
        assert_eq!(r.policy, "interleaved");
        assert!(r.coherence_violations.is_empty(), "hosts={hosts}");
        // 16 minipages round-robined: 16/hosts homed per shard, and the
        // phase-0 writer (host 0) faults on the 16 - 16/hosts remote ones.
        let extra = 16 - 16 / hosts as u64;
        assert_eq!(r.read_faults, base.read_faults + extra, "hosts={hosts}");
        assert_eq!(r.write_faults, base.write_faults + extra, "hosts={hosts}");
        assert_eq!(r.barriers, base.barriers, "hosts={hosts}");
        assert!(
            r.shards.iter().all(|s| s.directory_entries > 0),
            "hosts={hosts}: {:?}",
            r.shards
        );
        let again = golden_workload(hosts, HomePolicyKind::Interleaved);
        assert_eq!(
            (
                r.read_faults,
                r.write_faults,
                r.invalidations,
                r.messages,
                r.payload_bytes
            ),
            (
                again.read_faults,
                again.write_faults,
                again.invalidations,
                again.messages,
                again.payload_bytes
            ),
            "hosts={hosts}: nondeterministic counters"
        );
    }
}

proptest! {
    // Cluster-spawning properties are expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random barrier-paced programs behave like one flat memory under
    /// every home policy and consistency mode, and the post-run
    /// readers-XOR-one-writer + drained-directory checks stay clean.
    #[test]
    fn random_programs_hold_invariants_under_every_policy(
        script in proptest::collection::vec(
            (0usize..4, 0usize..8, any::<u32>()),
            1..20,
        ),
        hlrc in any::<bool>(),
    ) {
        let consistency = if hlrc {
            Consistency::HomeEagerRc
        } else {
            Consistency::SequentialSwMr
        };
        for policy in [
            HomePolicyKind::Centralized,
            HomePolicyKind::Interleaved,
            HomePolicyKind::FirstTouch,
        ] {
            let cfg = ClusterConfig {
                hosts: 4,
                views: 8,
                pages: 64,
                cost: CostModel::default(),
                alloc_mode: AllocMode::FINE,
                consistency,
                home_policy: policy,
                seed: 11,
                ..ClusterConfig::default()
            };
            let script_ref = &script;
            let mismatch = Mutex::new(None);
            let report = run(
                cfg,
                |s| (0..8).map(|_| s.alloc_cell_init::<u32>(0)).collect::<Vec<_>>(),
                |ctx, cells| {
                    for &(writer, cell, val) in script_ref {
                        if ctx.host().index() == writer {
                            ctx.cell_set(&cells[cell], val);
                        }
                        ctx.barrier();
                    }
                    let mut model = [0u32; 8];
                    for &(_, cl, v) in script_ref {
                        model[cl] = v;
                    }
                    for (i, c) in cells.iter().enumerate() {
                        let got = ctx.cell_get(c);
                        if got != model[i] {
                            *mismatch.lock() = Some((ctx.host(), i, got, model[i]));
                        }
                    }
                    ctx.barrier();
                },
            );
            prop_assert!(
                report.coherence_violations.is_empty(),
                "{policy:?} {consistency:?}: {:?}",
                report.coherence_violations
            );
            let m = mismatch.into_inner();
            prop_assert!(m.is_none(), "{policy:?} {consistency:?} mismatch: {m:?}");
        }
    }
}
