//! Shape tests: the qualitative claims behind each figure must hold on
//! moderate workloads (the `repro` binary regenerates the full-size runs).

use millipage::{AllocMode, ClusterConfig, CostModel};
use millipage_apps::{is, sor, water};

fn cfg(hosts: usize) -> ClusterConfig {
    ClusterConfig {
        hosts,
        ..ClusterConfig::default()
    }
}

/// Figure 6 shape: SOR speeds up with host count (near-linear in the
/// paper) because row-granularity sharing confines traffic to band
/// boundaries.
#[test]
fn sor_speedup_grows_with_hosts() {
    let p = sor::SorParams {
        rows: 8192,
        cols: 64,
        iters: 6,
    };
    // Virtual times carry scheduling jitter: message arrival order at the
    // servers depends on real thread interleaving, and under parallel
    // test load an unlucky interleaving can shave a few percent off one
    // data point. The *shape* claim is about the best achievable time per
    // host count, so take the min of a few runs — that is deterministic
    // in the limit and converges after 2-3 tries in practice.
    let best = |hosts: usize| {
        (0..3)
            .map(|_| sor::run_sor(cfg(hosts), p).timed_ns)
            .min()
            .expect("nonempty")
    };
    let t1 = best(1);
    let t2 = best(2);
    let t8 = best(8);
    let s2 = t1 as f64 / t2 as f64;
    let s8 = t1 as f64 / t8 as f64;
    assert!(s2 > 1.4, "2-host speedup {s2:.2}");
    assert!(s8 > s2, "speedup must grow: s2={s2:.2} s8={s8:.2}");
    assert!(s8 > 3.0, "8-host speedup {s8:.2}");
}

/// Figure 6 shape: IS also scales (the histogram is tiny; compute
/// dominates).
#[test]
fn is_speedup_grows_with_hosts() {
    let p = is::IsParams {
        keys: 1 << 21,
        max_key: 1 << 9,
        iters: 3,
        regions: 8,
        seed: 0x15AB,
    };
    let t1 = is::run_is(cfg(1), p).timed_ns;
    let t8 = is::run_is(cfg(8), p).timed_ns;
    let s8 = t1 as f64 / t8 as f64;
    assert!(s8 > 3.0, "8-host IS speedup {s8:.2}");
}

/// Figure 7 shape, fault side: chunking aggregates transfers, so total
/// faults drop monotonically-ish from level 1 to level 6.
#[test]
fn water_chunking_cuts_faults() {
    let p = water::WaterParams {
        molecules: 96,
        ..water::WaterParams::paper()
    };
    let faults = |mode: AllocMode| {
        let r = water::run_water(
            ClusterConfig {
                alloc_mode: mode,
                ..cfg(8)
            },
            p,
        );
        assert!(r.report.coherence_violations.is_empty());
        r.report.read_faults + r.report.write_faults
    };
    let f1 = faults(AllocMode::FINE);
    let f3 = faults(AllocMode::FineGrain { chunking: 3 });
    let f6 = faults(AllocMode::FineGrain { chunking: 6 });
    assert!(f3 < f1, "chunk 3 ({f3}) must beat chunk 1 ({f1})");
    assert!(f6 < f1, "chunk 6 ({f6}) must beat chunk 1 ({f1})");
}

/// Figure 7 shape, competing side: from the low-chunking trough, losing
/// false-sharing control (the `none` point) drives competing requests
/// back up (the paper reports 21 at level 1 rising to 601 at none; our
/// level-1 count carries extra read-read queueing, so the trough sits at
/// level 2-4 — see EXPERIMENTS.md).
#[test]
fn page_grain_raises_competing_requests_over_chunked() {
    let p = water::WaterParams {
        molecules: 192,
        ..water::WaterParams::paper()
    };
    let competing = |mode: AllocMode| {
        water::run_water(
            ClusterConfig {
                alloc_mode: mode,
                ..cfg(8)
            },
            p,
        )
        .report
        .competing_requests
    };
    let trough = (2..=4)
        .map(|c| competing(AllocMode::FineGrain { chunking: c }))
        .min()
        .expect("nonempty");
    let none = competing(AllocMode::PageGrain);
    assert!(
        none > trough,
        "page grain must contend more than chunked: trough={trough} none={none}"
    );
}

/// §3.5 what-if: solving the polling/timer problem shortens runs.
#[test]
fn fast_polling_speeds_water_up() {
    let p = water::WaterParams {
        molecules: 96,
        ..water::WaterParams::paper()
    };
    let slow = water::run_water(cfg(8), p).timed_ns;
    let fast = water::run_water(
        ClusterConfig {
            cost: CostModel::fast_polling(),
            ..cfg(8)
        },
        p,
    )
    .timed_ns;
    assert!(fast < slow, "fast polling must help: {fast} !< {slow}");
}

/// §4.4 headline: chunked WATER beats both extremes (the efficiency curve
/// has an interior optimum).
#[test]
fn water_interior_chunking_beats_extremes() {
    let p = water::WaterParams {
        molecules: 192,
        ..water::WaterParams::paper()
    };
    let t = |mode: AllocMode| {
        water::run_water(
            ClusterConfig {
                alloc_mode: mode,
                ..cfg(8)
            },
            p,
        )
        .timed_ns
    };
    let fine = t(AllocMode::FINE);
    let best_mid = (3..=6)
        .map(|c| t(AllocMode::FineGrain { chunking: c }))
        .min()
        .expect("nonempty");
    assert!(
        best_mid < fine,
        "some interior chunking level ({best_mid}) must beat fine grain ({fine})"
    );
}
