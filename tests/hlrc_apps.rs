//! Data-race-free applications under the §5 release-consistency
//! extension: identical results, different protocol economics.

use millipage::{AllocMode, ClusterConfig, Consistency, CostModel, SchedMode};

fn cfg(hosts: usize) -> ClusterConfig {
    ClusterConfig {
        hosts,
        views: 8,
        pages: 64,
        cost: CostModel::default(),
        alloc_mode: AllocMode::FINE,
        consistency: Consistency::HomeEagerRc,
        seed: 9,
        // WATER's lock-protected force accumulation is order-sensitive
        // floating-point summation; the deterministic scheduler pins the
        // lock grant order so the checksum is exactly reproducible.
        sched: SchedMode::deterministic(),
        ..ClusterConfig::default()
    }
}

#[test]
fn rc_apps_match_references() {
    use millipage_apps::{close, sor, water};
    // Data-race-free applications must compute identical results under
    // the relaxed protocol.
    let sp = sor::SorParams::small();
    let r = sor::run_sor(cfg(4), sp);
    assert!(r.report.coherence_violations.is_empty());
    assert!(close(r.checksum, sor::reference(sp), 1e-6));

    let wp = water::WaterParams::small();
    let r = water::run_water(
        ClusterConfig {
            alloc_mode: AllocMode::FineGrain { chunking: 5 },
            ..cfg(4)
        },
        wp,
    );
    assert!(r.report.coherence_violations.is_empty());
    assert!(
        close(r.checksum, water::reference(wp), 1e-9),
        "{} vs {}",
        r.checksum,
        water::reference(wp)
    );
}
