//! Cross-crate validation: every benchmark application computes the same
//! result on an 8-host Millipage cluster as its sequential reference, and
//! its protocol footprint matches the Table 2 shape.

use millipage::{AllocMode, ClusterConfig};
use millipage_apps::{close, is, lu, sor, tsp, water};

fn cfg(hosts: usize) -> ClusterConfig {
    ClusterConfig {
        hosts,
        ..ClusterConfig::default()
    }
}

#[test]
fn sor_eight_hosts_matches_reference() {
    let p = sor::SorParams {
        rows: 128,
        cols: 16,
        iters: 4,
    };
    let r = sor::run_sor(cfg(8), p);
    assert!(r.report.coherence_violations.is_empty());
    assert!(close(r.checksum, sor::reference(p), 1e-6));
    assert_eq!(r.report.barriers, 2 * p.iters as u64 + 2);
    assert_eq!(r.report.lock_acquires, 0, "SOR uses no locks (Table 2)");
}

#[test]
fn is_eight_hosts_matches_reference() {
    let p = is::IsParams::small();
    let r = is::run_is(cfg(8), p);
    assert!(r.report.coherence_violations.is_empty());
    assert!(close(r.checksum, is::reference(p, 8), 1e-9));
    assert_eq!(r.report.lock_acquires, 0, "IS uses no locks (Table 2)");
    // The rotated merge makes every region-update a remote write fault
    // after the first iteration: communication exists but is bounded.
    assert!(r.report.write_faults > 0);
}

#[test]
fn water_eight_hosts_matches_reference() {
    let p = water::WaterParams::small();
    let r = water::run_water(cfg(8), p);
    assert!(r.report.coherence_violations.is_empty());
    assert!(
        close(r.checksum, water::reference(p), 1e-9),
        "{} vs {}",
        r.checksum,
        water::reference(p)
    );
    assert!(
        r.report.lock_acquires > 0,
        "WATER locks molecules (Table 2)"
    );
}

#[test]
fn lu_eight_hosts_is_bitwise_exact() {
    let p = lu::LuParams::small();
    let r = lu::run_lu(cfg(8), p);
    assert!(r.report.coherence_violations.is_empty());
    assert_eq!(r.checksum, lu::reference(p));
    assert!(
        r.report.prefetches > 0,
        "LU prefetches pivot panels (S4.3.1)"
    );
}

#[test]
fn tsp_eight_hosts_finds_the_optimum() {
    let p = tsp::TspParams::small();
    let r = tsp::run_tsp(cfg(8), p);
    assert!(r.report.coherence_violations.is_empty());
    assert_eq!(r.checksum, tsp::reference(p));
    assert!(r.report.barriers <= 4, "TSP uses few barriers (Table 2)");
}

#[test]
fn water_is_correct_under_every_allocation_mode() {
    // The sharing layout must never change results, only performance.
    let p = water::WaterParams::small();
    let want = water::reference(p);
    for (name, mode) in [
        ("fine", AllocMode::FINE),
        ("chunk3", AllocMode::FineGrain { chunking: 3 }),
        ("chunk6", AllocMode::FineGrain { chunking: 6 }),
        ("page", AllocMode::PageGrain),
    ] {
        let r = water::run_water(
            ClusterConfig {
                alloc_mode: mode,
                ..cfg(8)
            },
            p,
        );
        assert!(
            r.report.coherence_violations.is_empty(),
            "{name}: {:?}",
            r.report.coherence_violations
        );
        assert!(
            close(r.checksum, want, 1e-9),
            "{name}: {} vs {want}",
            r.checksum
        );
    }
}

#[test]
fn odd_host_counts_work() {
    // The paper sweeps 1..8; make sure non-power-of-two host counts are
    // exercised too.
    for hosts in [3usize, 5, 7] {
        let p = sor::SorParams {
            rows: 64,
            cols: 16,
            iters: 2,
        };
        let r = sor::run_sor(cfg(hosts), p);
        assert!(r.report.coherence_violations.is_empty());
        assert!(close(r.checksum, sor::reference(p), 1e-6), "hosts={hosts}");
    }
}
