//! Parallel-simulation parity: the conservative parallel scheduler must
//! produce the *byte-identical* canonical schedule — same trace JSON,
//! same `RunReport` — as the sequential scheduler at the same seed, for
//! every worker count, home policy, consistency mode, and fault-plane
//! setting, with the online-adaptation engine running. Partitioning is a
//! wall-clock optimization; if any observable byte depends on it, replay
//! and exploration artifacts recorded sequentially would silently stop
//! reproducing on parallel runs.
//!
//! Hashes are SHA-256, computed by the inline implementation below (the
//! workspace vendors no crypto crate; FIPS 180-4, ~40 lines).

use millipage::{
    run, AdaptConfig, AllocMode, ChromeTrace, ClusterConfig, Consistency, HomePolicyKind, HostId,
    ParallelConfig, SchedMode, Tracer, WireFaults,
};
use proptest::prelude::*;

// ----------------------------------------------------------------------
// Inline SHA-256 (FIPS 180-4).
// ----------------------------------------------------------------------

mod sha256 {
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];

    /// SHA-256 of `data`, as a lowercase hex string.
    pub fn digest_hex(data: &[u8]) -> String {
        let mut h: [u32; 8] = [
            0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
            0x5be0cd19,
        ];
        let mut msg = data.to_vec();
        let bits = (data.len() as u64) * 8;
        msg.push(0x80);
        while msg.len() % 64 != 56 {
            msg.push(0);
        }
        msg.extend_from_slice(&bits.to_be_bytes());
        for block in msg.chunks_exact(64) {
            let mut w = [0u32; 64];
            for (i, c) in block.chunks_exact(4).enumerate() {
                w[i] = u32::from_be_bytes(c.try_into().unwrap());
            }
            for i in 16..64 {
                let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
                let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
                w[i] = w[i - 16]
                    .wrapping_add(s0)
                    .wrapping_add(w[i - 7])
                    .wrapping_add(s1);
            }
            let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
            for i in 0..64 {
                let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
                let ch = (e & f) ^ (!e & g);
                let t1 = hh
                    .wrapping_add(s1)
                    .wrapping_add(ch)
                    .wrapping_add(K[i])
                    .wrapping_add(w[i]);
                let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
                let maj = (a & b) ^ (a & c) ^ (b & c);
                let t2 = s0.wrapping_add(maj);
                hh = g;
                g = f;
                f = e;
                e = d.wrapping_add(t1);
                d = c;
                c = b;
                b = a;
                a = t1.wrapping_add(t2);
            }
            for (s, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
                *s = s.wrapping_add(v);
            }
        }
        h.iter().map(|x| format!("{x:08x}")).collect()
    }

    #[test]
    fn known_vectors() {
        // FIPS 180-4 test vectors.
        assert_eq!(
            digest_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            digest_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }
}

// ----------------------------------------------------------------------
// One run, rendered to bytes.
// ----------------------------------------------------------------------

const HOSTS: usize = 8;

/// The acceptance fault mix (1% drop + 0.5% dup + 2% reorder).
fn lossy_plane() -> WireFaults {
    WireFaults::lossy(13, 0.01, 0.005, 0.02)
}

/// One deterministic run — sequential when `parallel` is `None` — with
/// diagnostics and the adaptation engine on, rendered to the bytes whose
/// hash defines the observable schedule: the full Chrome-trace export
/// plus the `RunReport` JSON dump.
fn run_to_bytes(
    policy: HomePolicyKind,
    consistency: Consistency,
    faults: WireFaults,
    parallel: Option<ParallelConfig>,
) -> String {
    // Ample ring capacity: a dropped trace event would silently shrink
    // the bytes under comparison.
    let tracer = Tracer::enabled(1 << 16);
    let cfg = ClusterConfig {
        hosts: HOSTS,
        views: 16,
        pages: 64,
        alloc_mode: AllocMode::FINE,
        consistency,
        home_policy: policy,
        tracer: tracer.clone(),
        seed: 13,
        faults,
        sched: SchedMode::deterministic(),
        diag: true,
        adapt: AdaptConfig::enabled(),
        parallel,
        ..ClusterConfig::default()
    };
    let report = run(
        cfg,
        |s| {
            let cells = (0..8)
                .map(|_| s.alloc_vec_init(&[0u64; 2]))
                .collect::<Vec<_>>();
            let counter = s.alloc_cell_init::<u64>(0);
            (cells, counter)
        },
        |ctx, (cells, counter)| {
            for phase in 0..2u64 {
                if ctx.host() == HostId((phase as usize % ctx.hosts()) as u16) {
                    for (i, c) in cells.iter().enumerate() {
                        let v = ctx.get(c, 0);
                        ctx.set(c, 0, v + phase + i as u64);
                    }
                }
                ctx.barrier();
            }
            ctx.lock(1);
            let v = ctx.cell_get(counter);
            ctx.cell_set(counter, v + 1);
            ctx.unlock(1);
            ctx.barrier();
            ctx.prefetch_vec(&cells[0]);
            let _ = ctx.get(&cells[0], 1);
            ctx.barrier();
        },
    );
    assert!(
        report.coherence_violations.is_empty() && report.protocol_errors.is_empty(),
        "{policy:?}/{consistency:?}: {:?} {:?}",
        report.coherence_violations,
        report.protocol_errors
    );
    assert!(
        report.trace_dropped.is_empty(),
        "{policy:?}/{consistency:?}: trace ring overflow {:?}",
        report.trace_dropped
    );
    let log = tracer.drain();
    assert_eq!(log.dropped, 0, "{policy:?}/{consistency:?}: ring overflow");
    let mut chrome = ChromeTrace::new();
    chrome.add_run("parallel_sim", 0, &log.events);
    format!("{}\n{}", chrome.finish(), report.to_json())
}

/// Asserts the parallel schedule at each worker count hashes identically
/// to the sequential one; on mismatch, reports the first diverging byte.
fn assert_parity(policy: HomePolicyKind, consistency: Consistency, faults: fn() -> WireFaults) {
    let seq = run_to_bytes(policy, consistency, faults(), None);
    let seq_hash = sha256::digest_hex(seq.as_bytes());
    for workers in [1usize, 2, 4, 8] {
        let par = run_to_bytes(
            policy,
            consistency,
            faults(),
            Some(ParallelConfig::workers(workers)),
        );
        let par_hash = sha256::digest_hex(par.as_bytes());
        if par_hash != seq_hash {
            let at = seq
                .bytes()
                .zip(par.bytes())
                .position(|(x, y)| x != y)
                .unwrap_or(seq.len().min(par.len()));
            let lo = at.saturating_sub(80);
            panic!(
                "{policy:?}/{consistency:?}/{workers} workers: schedule diverged \
                 (sha256 {seq_hash} vs {par_hash}) at byte {at}:\n  seq: …{}\n  par: …{}",
                &seq[lo..(at + 80).min(seq.len())],
                &par[lo..(at + 80).min(par.len())]
            );
        }
    }
}

// The full matrix — 3 home policies × SC/HLRC × faults off/on, adapt
// engine always on, each cell at 1/2/4/8 workers vs sequential — split
// per policy so the harness can run the cells concurrently.

#[test]
fn parallel_matches_sequential_centralized() {
    for consistency in [Consistency::SequentialSwMr, Consistency::HomeEagerRc] {
        assert_parity(
            HomePolicyKind::Centralized,
            consistency,
            WireFaults::disabled,
        );
        assert_parity(HomePolicyKind::Centralized, consistency, lossy_plane);
    }
}

#[test]
fn parallel_matches_sequential_interleaved() {
    for consistency in [Consistency::SequentialSwMr, Consistency::HomeEagerRc] {
        assert_parity(
            HomePolicyKind::Interleaved,
            consistency,
            WireFaults::disabled,
        );
        assert_parity(HomePolicyKind::Interleaved, consistency, lossy_plane);
    }
}

#[test]
fn parallel_matches_sequential_first_touch() {
    for consistency in [Consistency::SequentialSwMr, Consistency::HomeEagerRc] {
        assert_parity(
            HomePolicyKind::FirstTouch,
            consistency,
            WireFaults::disabled,
        );
        assert_parity(HomePolicyKind::FirstTouch, consistency, lossy_plane);
    }
}

// ----------------------------------------------------------------------
// Property: ANY partition map preserves the canonical schedule.
// ----------------------------------------------------------------------

/// The sequential reference bytes for the proptest configuration,
/// computed once.
fn proptest_reference() -> &'static str {
    static REF: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    REF.get_or_init(|| {
        run_to_bytes(
            HomePolicyKind::Centralized,
            Consistency::SequentialSwMr,
            WireFaults::disabled(),
            None,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A *randomized* host → worker map — unbalanced, interleaved, some
    /// partitions possibly empty — still produces the canonical schedule
    /// byte for byte. Partitioning must never be observable.
    #[test]
    fn random_partition_maps_preserve_schedule(
        map in proptest::collection::vec(0usize..4, HOSTS..HOSTS + 1),
    ) {
        let workers = map.iter().max().copied().unwrap_or(0) + 1;
        let par = run_to_bytes(
            HomePolicyKind::Centralized,
            Consistency::SequentialSwMr,
            WireFaults::disabled(),
            Some(ParallelConfig {
                workers,
                partition_map: Some(map.clone()),
                lookahead: None,
            }),
        );
        let seq = proptest_reference();
        prop_assert_eq!(
            sha256::digest_hex(par.as_bytes()),
            sha256::digest_hex(seq.as_bytes()),
            "map {:?} diverged from the canonical schedule",
            map
        );
    }
}
