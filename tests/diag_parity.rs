//! Host/sim telemetry parity: the per-`(minipage, host)` fault and
//! invalidation counters the real-memory backend records from inside its
//! SIGSEGV handler must equal — exactly, not approximately — the counts
//! the simulator derives for the same application at the same geometry,
//! both from its own stats table and from a full event trace.
#![cfg(target_os = "linux")]

use millipage::{trace_counts, AllocMode, ClusterConfig, SchedMode, Tracer};
use millipage_apps::close;
use millipage_apps::is::{self, IsParams};
use millipage_apps::sor::{self, SorParams};

/// Large enough that these small workloads never drop an event — parity
/// against a truncated trace would be meaningless.
const RING: usize = 1 << 16;

/// Runs the checks shared by both apps: checksums agree, no trace drops,
/// and all three counter sources — host stats table, sim stats table,
/// sim trace — are identical maps.
fn assert_parity(
    name: &str,
    host: &millipage_apps::HostAppRun,
    sim: &millipage_apps::AppRun,
    tracer: &Tracer,
) {
    assert!(
        close(host.checksum, sim.checksum, 1e-9),
        "{name}: checksum host {} vs sim {}",
        host.checksum,
        sim.checksum
    );
    let log = tracer.drain();
    assert_eq!(log.dropped, 0, "{name}: sim trace dropped events");

    let hd = host.report.diag.as_ref().expect("host diagnostics");
    let sd = sim.report.diag.as_ref().expect("sim diagnostics");
    let host_table = hd.counts();
    let sim_table = sd.counts();
    let sim_trace = trace_counts(&log.events);
    assert!(!sim_trace.is_empty(), "{name}: empty trace-derived counts");
    assert_eq!(
        sim_table, sim_trace,
        "{name}: sim stats table disagrees with its own trace"
    );
    assert_eq!(
        host_table, sim_trace,
        "{name}: real-memory counters disagree with the sim trace"
    );
}

/// SOR at 4 hosts: red/black relaxation with boundary-row exchange. The
/// sim config mirrors the host runner's geometry (views/pages 1 are maxed
/// up to the same formulas), so minipage ids align across backends.
#[test]
fn sor_host_counters_match_sim_exactly_at_four_hosts() {
    let p = SorParams::small();
    let host = sor::run_sor_host_diag(4, p).expect("host run");
    let tracer = Tracer::enabled(RING);
    let sim = sor::run_sor(
        ClusterConfig {
            hosts: 4,
            views: 1,
            pages: 1,
            alloc_mode: AllocMode::FINE,
            diag: true,
            tracer: tracer.clone(),
            sched: SchedMode::deterministic(),
            ..ClusterConfig::default()
        },
        p,
    );
    assert_parity("SOR", &host, &sim, &tracer);
}

/// IS at 4 hosts: the rotated key-merge ping-pongs region minipages
/// between hosts, so invalidation counts are exercised, not just faults.
#[test]
fn is_host_counters_match_sim_exactly_at_four_hosts() {
    let p = IsParams::small();
    let host = is::run_is_host_diag(4, p).expect("host run");
    let tracer = Tracer::enabled(RING);
    let sim = is::run_is(
        ClusterConfig {
            hosts: 4,
            views: 1,
            pages: 64,
            diag: true,
            tracer: tracer.clone(),
            sched: SchedMode::deterministic(),
            ..ClusterConfig::default()
        },
        p,
    );
    assert_parity("IS", &host, &sim, &tracer);
}
