//! End-to-end tests for the online adaptation engine: each planted
//! pathology from the diagnostics plane (false-sharing pair, ping-pong
//! pair, skewed-home hammer) is run once statically and once with the
//! adaptation engine armed, under the deterministic scheduler. The
//! adapted run must apply the matching action, clear the triggering
//! finding, improve the planted metric, stay audit-clean, and replay
//! byte-identically.

use millipage::{
    audit, run, AdaptConfig, AuditMode, ClusterConfig, Consistency, HomePolicyKind, RunReport,
    SchedMode, Tracer,
};

const TRACE_RING: usize = 1 << 16;

fn cfg(hosts: usize, adapt: bool) -> ClusterConfig {
    ClusterConfig {
        hosts,
        views: 16,
        pages: 64,
        diag: true,
        sched: SchedMode::deterministic(),
        adapt: if adapt {
            AdaptConfig::enabled()
        } else {
            AdaptConfig::default()
        },
        ..ClusterConfig::default()
    }
}

fn faults_plus_inv(r: &RunReport) -> u64 {
    r.read_faults + r.write_faults + r.invalidations
}

fn assert_clean(r: &RunReport, what: &str) {
    assert!(
        r.coherence_violations.is_empty(),
        "{what}: coherence violations: {:?}",
        r.coherence_violations
    );
    assert!(
        r.protocol_errors.is_empty(),
        "{what}: protocol errors: {:?}",
        r.protocol_errors
    );
}

/// Two hosts write pairwise-disjoint halves of one 64-byte minipage —
/// the canonical false-sharing pair. Every round the whole minipage
/// bounces between them even though no byte is truly shared.
fn false_sharing_run(cfg: ClusterConfig) -> RunReport {
    run(
        cfg,
        |s| s.alloc_vec_init(&[0u32; 16]),
        |ctx, v| {
            let me = ctx.host().index();
            for round in 0..16u32 {
                ctx.write_range(v, me * 8, &[round; 8]);
                ctx.barrier();
            }
        },
    )
}

/// Two physically adjacent 4-byte minipages always written together by
/// whichever host holds the round — a ping-ponging pair the engine
/// should merge back into one transfer unit.
fn ping_pong_pair_run(cfg: ClusterConfig) -> RunReport {
    run(
        cfg,
        |s| {
            let a = s.alloc_vec_init(&[0u32]);
            let b = s.alloc_vec_init(&[0u32]);
            (a, b)
        },
        |ctx, (a, b)| {
            let me = ctx.host().index();
            for round in 0..16u32 {
                if round as usize % 2 == me {
                    ctx.write_range(a, 0, &[round]);
                    ctx.write_range(b, 0, &[round]);
                }
                ctx.barrier();
            }
        },
    )
}

/// Host 1 hammers one remotely homed minipage under HLRC — every round
/// ships a diff to the home and re-faults — while the rest of the heap
/// sees one cold touch per host (first, so the detector has a baseline
/// mid-run). The home should migrate to the writer.
fn skewed_home_run(cfg: ClusterConfig) -> RunReport {
    run(
        cfg,
        |s| {
            let hot = s.alloc_vec_init(&[0u32; 8]);
            let cold: Vec<_> = (0..6).map(|_| s.alloc_vec_init(&[0u32])).collect();
            (hot, cold)
        },
        |ctx, (hot, cold)| {
            let me = ctx.host().index();
            let _ = ctx.read_range(&cold[me % cold.len()], 0..1);
            ctx.barrier();
            for round in 0..24u32 {
                if me == 1 {
                    ctx.write_range(hot, 0, &[round; 8]);
                }
                ctx.barrier();
            }
        },
    )
}

#[test]
fn split_clears_false_sharing_and_cuts_faults() {
    let stat = false_sharing_run(cfg(2, false));
    let adapted = false_sharing_run(cfg(2, true));
    assert_clean(&stat, "static");
    assert_clean(&adapted, "adapted");
    let a = adapted.adapt.as_ref().expect("adapt report present");
    assert!(a.splits >= 1, "no split applied: {:?}", a.actions);
    // The triggering finding is gone: the parent is retired and each
    // child is single-writer.
    let diag = adapted.diag.as_ref().expect("diagnostics enabled");
    assert!(
        diag.false_sharing.is_empty(),
        "false sharing survived the split: {:?}",
        diag.false_sharing
    );
    let (before, after) = (faults_plus_inv(&stat), faults_plus_inv(&adapted));
    assert!(
        after * 4 <= before * 3,
        "split saved too little: {before} -> {after} faults+invalidations"
    );
}

#[test]
fn merge_coalesces_ping_pong_pair() {
    let stat = ping_pong_pair_run(cfg(2, false));
    let adapted = ping_pong_pair_run(cfg(2, true));
    assert_clean(&stat, "static");
    assert_clean(&adapted, "adapted");
    let a = adapted.adapt.as_ref().expect("adapt report present");
    assert!(a.merges >= 1, "no merge applied: {:?}", a.actions);
    let diag = adapted.diag.as_ref().expect("diagnostics enabled");
    // The planted pair (mp0, mp1) is retired; neither may still be
    // flagged. The merged unit still ping-pongs (the workload alternates
    // by design) but takes one fault per handoff instead of two.
    assert!(
        !diag.ping_pong.iter().any(|f| f.mp == 0 || f.mp == 1),
        "retired siblings still flagged: {:?}",
        diag.ping_pong
    );
    let (before, after) = (faults_plus_inv(&stat), faults_plus_inv(&adapted));
    assert!(
        after * 4 <= before * 3,
        "merge saved too little: {before} -> {after} faults+invalidations"
    );
}

#[test]
fn migration_rehomes_hammered_minipage() {
    let base = ClusterConfig {
        consistency: Consistency::HomeEagerRc,
        home_policy: HomePolicyKind::Centralized,
        ..cfg(4, false)
    };
    let adapted_cfg = ClusterConfig {
        adapt: AdaptConfig::enabled(),
        ..base.clone()
    };
    let stat = skewed_home_run(base);
    let adapted = skewed_home_run(adapted_cfg);
    assert_clean(&stat, "static");
    assert_clean(&adapted, "adapted");
    let a = adapted.adapt.as_ref().expect("adapt report present");
    assert!(a.migrations >= 1, "no migration applied: {:?}", a.actions);
    assert!(
        a.actions
            .iter()
            .any(|e| e.kind == "migrate" && e.mp == 0 && e.detail.contains("h1")),
        "hot minipage not migrated to its writer: {:?}",
        a.actions
    );
    // The hot-home finding clears: the hammering host now serves its own
    // faults locally, so the old home's remote load is gone.
    let diag = adapted.diag.as_ref().expect("diagnostics enabled");
    assert!(
        diag.hot_home.is_empty(),
        "hot-home finding survived migration: {:?}",
        diag.hot_home
    );
    // Fault counts are placement-independent; the win is wire traffic —
    // diffs and fetches stop crossing the network once the writer is its
    // own home. Measured over the inter-host links: loopback delivery to
    // a host's own shard is a local handler call either way.
    let cross_host_bytes = |r: &RunReport| {
        r.diag
            .as_ref()
            .expect("diagnostics enabled")
            .links
            .iter()
            .filter(|l| l.from != l.to)
            .map(|l| l.bytes)
            .sum::<u64>()
    };
    let (wire_before, wire_after) = (cross_host_bytes(&stat), cross_host_bytes(&adapted));
    assert!(
        wire_after * 4 <= wire_before * 3,
        "migration saved too little wire traffic: {wire_before} -> {wire_after} cross-host bytes"
    );
    assert!(
        faults_plus_inv(&adapted) <= faults_plus_inv(&stat) + faults_plus_inv(&stat) / 20,
        "migration regressed faults: {} -> {}",
        faults_plus_inv(&stat),
        faults_plus_inv(&adapted)
    );
}

/// Satellite regression: migration resets the last-writer/alternation
/// lanes. Two hosts alternate on a minipage long enough to build up
/// alternations (with host 1 writing the strict majority), the engine
/// migrates it to host 1, then only host 1 keeps writing. With stale
/// lanes the pre-migration alternations would keep the minipage flagged
/// as ping-pong forever; with the reset the final report is clean.
#[test]
fn migrated_minipage_starts_alternation_clean() {
    let go = || {
        let base = ClusterConfig {
            consistency: Consistency::HomeEagerRc,
            home_policy: HomePolicyKind::Centralized,
            // Hold the planner until phase 1 completes (barrier 9: one
            // cold barrier + eight rounds), so the migration finds the
            // accumulated alternations in the lanes it must reset.
            adapt: AdaptConfig {
                start_barrier: 9,
                ..AdaptConfig::enabled()
            },
            ..cfg(3, false)
        };
        run(
            base,
            |s| {
                let hot = s.alloc_vec_init(&[0u32; 8]);
                let cold: Vec<_> = (0..6).map(|_| s.alloc_vec_init(&[0u32])).collect();
                (hot, cold)
            },
            |ctx, (hot, cold)| {
                let me = ctx.host().index();
                let _ = ctx.read_range(&cold[me % cold.len()], 0..1);
                ctx.barrier();
                // Phase 1: hosts 1 and 2 alternate, host 1 writing three
                // rounds of every four — alternations build up while
                // host 1 stays the dominant writer.
                for round in 0..8u32 {
                    if (round % 4 == 3 && me == 2) || (round % 4 != 3 && me == 1) {
                        ctx.write_range(hot, 0, &[round; 8]);
                    }
                    ctx.barrier();
                }
                // Phase 2: host 1 alone.
                for round in 8..16u32 {
                    if me == 1 {
                        ctx.write_range(hot, 0, &[round; 8]);
                    }
                    ctx.barrier();
                }
            },
        )
    };
    let adapted = go();
    let a = adapted.adapt.as_ref().expect("adapt report present");
    assert!(
        a.actions.iter().any(|e| e.kind == "migrate" && e.mp == 0),
        "hot minipage was not migrated: {:?}",
        a.actions
    );
    let diag = adapted.diag.as_ref().expect("diagnostics enabled");
    let hot = diag
        .minipages
        .iter()
        .find(|d| d.mp == 0)
        .expect("hot minipage reported");
    // Phase 1 produced 4 handoffs; a missed reset would carry them into
    // the final report and re-flag the freshly migrated minipage.
    assert!(
        hot.alternations <= 1,
        "alternation lane not reset on migration: {} handoffs survive",
        hot.alternations
    );
    assert!(
        !diag.ping_pong.iter().any(|f| f.mp == 0),
        "migrated minipage re-flagged as ping-pong: {:?}",
        diag.ping_pong
    );
}

/// The adaptation plane is deterministic: identical configs produce
/// byte-identical action fingerprints, findings and fault counters.
#[test]
fn adaptation_is_deterministic() {
    let fp = |r: &RunReport| {
        (
            r.adapt.as_ref().expect("adapt report").fingerprint(),
            r.diag.as_ref().expect("diag").findings_fingerprint(),
            r.read_faults,
            r.write_faults,
            r.invalidations,
        )
    };
    let a = false_sharing_run(cfg(2, true));
    let b = false_sharing_run(cfg(2, true));
    assert_eq!(fp(&a), fp(&b), "false-sharing adaptation diverged");
    let c = ping_pong_pair_run(cfg(2, true));
    let d = ping_pong_pair_run(cfg(2, true));
    assert_eq!(fp(&c), fp(&d), "ping-pong adaptation diverged");
}

/// With the engine disabled the report carries no adapt section and the
/// run matches a plain static run exactly (the default stays byte-stable).
#[test]
fn disabled_engine_changes_nothing() {
    let plain = false_sharing_run(cfg(2, false));
    let off = false_sharing_run(ClusterConfig {
        adapt: AdaptConfig {
            enabled: false,
            ..AdaptConfig::enabled()
        },
        ..cfg(2, false)
    });
    assert!(plain.adapt.is_none() && off.adapt.is_none());
    assert_eq!(faults_plus_inv(&plain), faults_plus_inv(&off));
    assert_eq!(plain.to_json(), off.to_json());
}

/// Every planted adapted run replays through the trace auditor clean:
/// the SW/MR and HLRC invariants hold across splits, merges and
/// migrations, and the new adaptation invariants (quiesced window, reset
/// state, exactly-once forwarding) hold too.
#[test]
fn adapted_runs_stay_audit_clean() {
    let audit_of = |r: fn(ClusterConfig) -> RunReport, base: ClusterConfig, mode: AuditMode| {
        let tracer = Tracer::enabled(TRACE_RING);
        let report = r(ClusterConfig {
            tracer: tracer.clone(),
            ..base
        });
        assert_clean(&report, "traced adapted run");
        assert!(
            report.adapt.as_ref().is_some_and(|a| !a.actions.is_empty()),
            "adapted run applied no actions"
        );
        let log = tracer.drain();
        assert_eq!(log.dropped, 0, "trace ring overflowed");
        let v = audit(&log.events, mode);
        assert!(v.is_empty(), "audit violations: {v:?}");
    };
    audit_of(false_sharing_run, cfg(2, true), AuditMode::SwMr);
    audit_of(ping_pong_pair_run, cfg(2, true), AuditMode::SwMr);
    audit_of(
        skewed_home_run,
        ClusterConfig {
            consistency: Consistency::HomeEagerRc,
            home_policy: HomePolicyKind::Centralized,
            ..cfg(4, true)
        },
        AuditMode::Hlrc,
    );
}

/// Adaptation holds up under every home policy, not just the default:
/// the planted split still applies and the run stays violation-free.
#[test]
fn split_applies_under_every_home_policy() {
    for policy in [
        HomePolicyKind::Centralized,
        HomePolicyKind::Interleaved,
        HomePolicyKind::FirstTouch,
    ] {
        let adapted = false_sharing_run(ClusterConfig {
            home_policy: policy,
            ..cfg(2, true)
        });
        assert_clean(&adapted, "adapted");
        let a = adapted.adapt.as_ref().expect("adapt report present");
        assert!(
            a.splits >= 1,
            "{policy:?}: no split applied: {:?}",
            a.actions
        );
    }
}
