//! Backend-parity goldens: the sim backend behind the backend trait pair
//! must produce byte-identical deterministic output vs. the pre-refactor
//! protocol core.
//!
//! The goldens under `tests/goldens/` were captured *before* the protocol
//! core was made generic over `MemoryBackend`/`Transport`. Each golden pins
//! one deterministic run three ways:
//!
//! * an FNV-64 hash of the full Chrome-trace export (every protocol event,
//!   every virtual timestamp),
//! * the trace event count (a readable first-divergence signal), and
//! * the complete `RunReport` JSON (all counters, histograms, breakdowns).
//!
//! If any of these drift, the refactor changed observable behavior — the
//! determinism contract of ISSUE 6 is broken. Regenerate (only when a
//! behavior change is *intended* and reviewed) with
//! `MILLIPAGE_REGEN_GOLDENS=1 cargo test --test backend_parity`.

use millipage::{
    run, AllocMode, ChromeTrace, ClusterConfig, Consistency, HomePolicyKind, HostId, SchedMode,
    Tracer,
};
use std::fmt::Write as _;
use std::path::PathBuf;

/// FNV-1a 64-bit over the trace bytes: no external hash crates in the
/// workspace, and 64 bits is plenty to flag a byte-level divergence.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One deterministic run of the mixed protocol workload (reads, writes,
/// barriers, locks, prefetch) rendered to (chrome trace, event count,
/// report JSON).
fn run_case(policy: HomePolicyKind, consistency: Consistency) -> (String, usize, String) {
    let tracer = Tracer::enabled(1 << 14);
    let cfg = ClusterConfig {
        hosts: 4,
        views: 8,
        pages: 64,
        alloc_mode: AllocMode::FINE,
        consistency,
        home_policy: policy,
        tracer: tracer.clone(),
        seed: 99,
        sched: SchedMode::deterministic(),
        ..ClusterConfig::default()
    };
    let report = run(
        cfg,
        |s| {
            let cells = (0..8)
                .map(|_| s.alloc_vec_init(&[0u64; 2]))
                .collect::<Vec<_>>();
            let counter = s.alloc_cell_init::<u64>(0);
            (cells, counter)
        },
        |ctx, (cells, counter)| {
            for phase in 0..3u64 {
                if ctx.host() == HostId((phase as usize % ctx.hosts()) as u16) {
                    for (i, c) in cells.iter().enumerate() {
                        let v = ctx.get(c, 0);
                        ctx.set(c, 0, v + phase + i as u64);
                    }
                }
                ctx.barrier();
            }
            ctx.lock(1);
            let v = ctx.cell_get(counter);
            ctx.cell_set(counter, v + 1);
            ctx.unlock(1);
            ctx.barrier();
            ctx.prefetch_vec(&cells[0]);
            let _ = ctx.get(&cells[0], 1);
            ctx.barrier();
        },
    );
    assert!(
        report.coherence_violations.is_empty() && report.protocol_errors.is_empty(),
        "{policy:?}/{consistency:?}: {:?} {:?}",
        report.coherence_violations,
        report.protocol_errors
    );
    let log = tracer.drain();
    assert_eq!(log.dropped, 0, "{policy:?}/{consistency:?}: ring overflow");
    let mut chrome = ChromeTrace::new();
    chrome.add_run("parity", 0, &log.events);
    (chrome.finish(), log.events.len(), report.to_json())
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("parity_{name}.golden"))
}

/// Golden file format: `fnv64 <hex>\nevents <count>\n<report json>`.
fn render_golden(trace: &str, events: usize, report: &str) -> String {
    let mut out = String::new();
    writeln!(out, "fnv64 {:#018x}", fnv64(trace.as_bytes())).unwrap();
    writeln!(out, "events {events}").unwrap();
    out.push_str(report);
    out.push('\n');
    out
}

fn check_case(name: &str, policy: HomePolicyKind, consistency: Consistency) {
    let (trace, events, report) = run_case(policy, consistency);
    let rendered = render_golden(&trace, events, &report);
    let path = golden_path(name);
    if std::env::var_os("MILLIPAGE_REGEN_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    if rendered != golden {
        let at = rendered
            .bytes()
            .zip(golden.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or(rendered.len().min(golden.len()));
        let lo = at.saturating_sub(80);
        panic!(
            "{name}: sim backend diverged from pre-refactor golden at byte {at}:\n  \
             now:    …{}\n  golden: …{}",
            &rendered[lo..(at + 80).min(rendered.len())],
            &golden[lo..(at + 80).min(golden.len())],
        );
    }
}

/// SW/MR through the centralized manager: the Figure 3 protocol.
#[test]
fn swmr_centralized_matches_pre_refactor_golden() {
    check_case(
        "swmr_centralized",
        HomePolicyKind::Centralized,
        Consistency::SequentialSwMr,
    );
}

/// SW/MR with distributed management (interleaved homes): exercises the
/// multi-shard request routing.
#[test]
fn swmr_interleaved_matches_pre_refactor_golden() {
    check_case(
        "swmr_interleaved",
        HomePolicyKind::Interleaved,
        Consistency::SequentialSwMr,
    );
}

/// HLRC (home-based eager release consistency): twins, diffs, rc flushes.
#[test]
fn hlrc_centralized_matches_pre_refactor_golden() {
    check_case(
        "hlrc_centralized",
        HomePolicyKind::Centralized,
        Consistency::HomeEagerRc,
    );
}
