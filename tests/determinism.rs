//! Determinism of the cooperative scheduler: with `SchedMode::
//! deterministic()`, one seed is one interleaving — two runs of the same
//! configuration must produce byte-identical protocol traces and
//! byte-identical reports, for every home policy, both consistency
//! modes, and with the fault plane off and on. This is the property the
//! whole exploration/replay stack rests on: if the canonical schedule
//! drifted between runs, recorded reproducers would be meaningless.

use millipage::{
    run, AllocMode, ChromeTrace, ClusterConfig, Consistency, HomePolicyKind, HostId, SchedMode,
    Tracer, WireFaults,
};

const POLICIES: [HomePolicyKind; 3] = [
    HomePolicyKind::Centralized,
    HomePolicyKind::Interleaved,
    HomePolicyKind::FirstTouch,
];

/// The acceptance fault mix (1% drop + 0.5% dup + 2% reorder): the fault
/// plane's per-link RNG streams are seeded, so even a faulty wire must
/// replay identically.
fn lossy_plane() -> WireFaults {
    WireFaults::lossy(13, 0.01, 0.005, 0.02)
}

/// One run under the deterministic scheduler, rendered to bytes: the
/// full Chrome-trace export plus the `RunReport` JSON dump. Anything
/// schedule-dependent — fault interleavings, lock grant order, queue
/// depths, histograms, virtual times — feeds into one of the two.
fn run_to_bytes(policy: HomePolicyKind, consistency: Consistency, faults: WireFaults) -> String {
    let tracer = Tracer::enabled(1 << 14);
    let cfg = ClusterConfig {
        hosts: 4,
        views: 8,
        pages: 64,
        alloc_mode: AllocMode::FINE,
        consistency,
        home_policy: policy,
        tracer: tracer.clone(),
        seed: 13,
        faults,
        sched: SchedMode::deterministic(),
        ..ClusterConfig::default()
    };
    let report = run(
        cfg,
        |s| {
            let cells = (0..8)
                .map(|_| s.alloc_vec_init(&[0u64; 2]))
                .collect::<Vec<_>>();
            let counter = s.alloc_cell_init::<u64>(0);
            (cells, counter)
        },
        |ctx, (cells, counter)| {
            for phase in 0..3u64 {
                if ctx.host() == HostId((phase as usize % ctx.hosts()) as u16) {
                    for (i, c) in cells.iter().enumerate() {
                        let v = ctx.get(c, 0);
                        ctx.set(c, 0, v + phase + i as u64);
                    }
                }
                ctx.barrier();
            }
            ctx.lock(1);
            let v = ctx.cell_get(counter);
            ctx.cell_set(counter, v + 1);
            ctx.unlock(1);
            ctx.barrier();
            ctx.prefetch_vec(&cells[0]);
            let _ = ctx.get(&cells[0], 1);
            ctx.barrier();
        },
    );
    assert!(
        report.coherence_violations.is_empty() && report.protocol_errors.is_empty(),
        "{policy:?}/{consistency:?}: {:?} {:?}",
        report.coherence_violations,
        report.protocol_errors
    );
    let log = tracer.drain();
    assert_eq!(log.dropped, 0, "{policy:?}/{consistency:?}: ring overflow");
    let mut chrome = ChromeTrace::new();
    chrome.add_run("determinism", 0, &log.events);
    format!("{}\n{}", chrome.finish(), report.to_json())
}

fn assert_deterministic(faults: fn() -> WireFaults) {
    for policy in POLICIES {
        for consistency in [Consistency::SequentialSwMr, Consistency::HomeEagerRc] {
            let a = run_to_bytes(policy, consistency, faults());
            let b = run_to_bytes(policy, consistency, faults());
            // Byte equality of trace + report; on mismatch report where
            // the runs diverged rather than dumping two traces.
            if a != b {
                let at = a
                    .bytes()
                    .zip(b.bytes())
                    .position(|(x, y)| x != y)
                    .unwrap_or(a.len().min(b.len()));
                let lo = at.saturating_sub(80);
                panic!(
                    "{policy:?}/{consistency:?}: runs diverged at byte {at}:\n  a: …{}\n  b: …{}",
                    &a[lo..(at + 80).min(a.len())],
                    &b[lo..(at + 80).min(b.len())]
                );
            }
        }
    }
}

/// Perfect wire: same seed, same trace, same report — bytes for bytes.
#[test]
fn same_seed_same_bytes_perfect_wire() {
    assert_deterministic(WireFaults::disabled);
}

/// Faulty wire: drops, duplicates and reorders are themselves seeded, so
/// the retransmit storms replay identically too.
#[test]
fn same_seed_same_bytes_lossy_wire() {
    assert_deterministic(lossy_plane);
}
